// Unit + property tests for the connectivity engine, cross-validated
// against brute-force subset-removal oracles on small graphs.

#include "core/connectivity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "core/bfs.h"
#include "core/random_graphs.h"
#include "core/rng.h"

namespace lhg::core {
namespace {

Graph path_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.push_back({i, static_cast<NodeId>(i + 1)});
  return Graph::from_edges(n, edges);
}

Graph cycle_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < n; ++i) edges.push_back({i, static_cast<NodeId>((i + 1) % n)});
  return Graph::from_edges(n, edges);
}

Graph complete_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return Graph::from_edges(n, edges);
}

Graph petersen() {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  std::vector<Edge> edges;
  for (NodeId i = 0; i < 5; ++i) {
    edges.push_back({i, static_cast<NodeId>((i + 1) % 5)});
    edges.push_back({static_cast<NodeId>(5 + i), static_cast<NodeId>(5 + (i + 2) % 5)});
    edges.push_back({i, static_cast<NodeId>(i + 5)});
  }
  return Graph::from_edges(10, edges);
}

/// Brute-force κ: smallest vertex subset whose removal disconnects the
/// graph (n-1 for complete graphs).  Exponential; small n only.
std::int32_t kappa_bruteforce(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (!is_connected(g)) return 0;
  for (std::int32_t size = 1; size < n - 1; ++size) {
    std::vector<NodeId> subset(static_cast<std::size_t>(size));
    std::vector<bool> select(static_cast<std::size_t>(n), false);
    std::fill(select.begin(), select.begin() + size, true);
    do {
      std::size_t idx = 0;
      for (NodeId u = 0; u < n; ++u) {
        if (select[static_cast<std::size_t>(u)]) subset[idx++] = u;
      }
      if (!is_connected_after_node_removal(g, subset)) return size;
    } while (std::prev_permutation(select.begin(), select.end()));
  }
  return n - 1;
}

/// Brute-force λ: smallest edge subset whose removal disconnects.
std::int32_t lambda_bruteforce(const Graph& g) {
  if (!is_connected(g)) return 0;
  const auto edges = g.edges();
  const auto m = static_cast<std::int32_t>(edges.size());
  for (std::int32_t size = 1; size <= m; ++size) {
    std::vector<bool> select(static_cast<std::size_t>(m), false);
    std::fill(select.begin(), select.begin() + size, true);
    do {
      std::vector<Edge> subset;
      for (std::int32_t e = 0; e < m; ++e) {
        if (select[static_cast<std::size_t>(e)]) {
          subset.push_back(edges[static_cast<std::size_t>(e)]);
        }
      }
      if (!is_connected_after_edge_removal(g, subset)) return size;
    } while (std::prev_permutation(select.begin(), select.end()));
  }
  return m;
}

TEST(Connectivity, KnownKappaValues) {
  EXPECT_EQ(vertex_connectivity(path_graph(6)), 1);
  EXPECT_EQ(vertex_connectivity(cycle_graph(6)), 2);
  EXPECT_EQ(vertex_connectivity(complete_graph(6)), 5);
  EXPECT_EQ(vertex_connectivity(petersen()), 3);
  EXPECT_EQ(vertex_connectivity(Graph::from_edges(4, {})), 0);
  EXPECT_EQ(vertex_connectivity(Graph::from_edges(1, {})), 0);
}

TEST(Connectivity, KnownLambdaValues) {
  EXPECT_EQ(edge_connectivity(path_graph(6)), 1);
  EXPECT_EQ(edge_connectivity(cycle_graph(6)), 2);
  EXPECT_EQ(edge_connectivity(complete_graph(6)), 5);
  EXPECT_EQ(edge_connectivity(petersen()), 3);
  EXPECT_EQ(edge_connectivity(Graph::from_edges(4, {})), 0);
}

TEST(Connectivity, UpperLimitCapsWork) {
  EXPECT_EQ(vertex_connectivity(complete_graph(9), 3), 3);
  EXPECT_EQ(edge_connectivity(complete_graph(9), 2), 2);
}

TEST(Connectivity, LocalConnectivities) {
  Graph g = cycle_graph(8);
  EXPECT_EQ(local_edge_connectivity(g, 0, 4), 2);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 4), 2);
  // Adjacent pair in a cycle: the direct edge plus the long way.
  EXPECT_EQ(local_vertex_connectivity(g, 0, 1), 2);
  EXPECT_THROW(local_edge_connectivity(g, 0, 0), std::invalid_argument);
  EXPECT_THROW(local_vertex_connectivity(g, 0, 99), std::invalid_argument);
}

TEST(Connectivity, IsKConnectedPredicates) {
  Graph c6 = cycle_graph(6);
  EXPECT_TRUE(is_k_vertex_connected(c6, 0));
  EXPECT_TRUE(is_k_vertex_connected(c6, 1));
  EXPECT_TRUE(is_k_vertex_connected(c6, 2));
  EXPECT_FALSE(is_k_vertex_connected(c6, 3));
  EXPECT_TRUE(is_k_edge_connected(c6, 2));
  EXPECT_FALSE(is_k_edge_connected(c6, 3));
  // n <= k can never be k-connected.
  EXPECT_FALSE(is_k_vertex_connected(complete_graph(3), 3));
  EXPECT_TRUE(is_k_vertex_connected(complete_graph(4), 3));
}

TEST(Connectivity, DisjointPathsOnPetersen) {
  Graph g = petersen();
  const auto paths = vertex_disjoint_paths(g, 0, 7, 3);
  ASSERT_TRUE(paths.has_value());
  ASSERT_EQ(paths->size(), 3u);
  std::set<NodeId> internal_seen;
  for (const auto& path : *paths) {
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 7);
    // Consecutive nodes must be adjacent.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]))
          << path[i] << "-" << path[i + 1];
    }
    // Internal vertices must be globally unique across paths.
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(internal_seen.insert(path[i]).second)
          << "shared internal vertex " << path[i];
    }
  }
  // Asking for more than κ(s,t) paths fails.
  EXPECT_FALSE(vertex_disjoint_paths(g, 0, 7, 4).has_value());
}

TEST(Connectivity, DisjointPathsDecompositionIsPinned) {
  // Golden regression for the flow decomposition's node-indexed flat
  // successor storage (it used to hash on a std::unordered_map): the
  // exact paths are a pure function of the CSR arc order, so any
  // future hashed-order leak shows up as a diff here, not as a
  // cross-platform flake.
  Graph g = petersen();
  const auto paths = vertex_disjoint_paths(g, 0, 7, 3);
  ASSERT_TRUE(paths.has_value());
  const std::vector<std::vector<NodeId>> expected{
      {0, 5, 7}, {0, 4, 9, 7}, {0, 1, 2, 7}};
  EXPECT_EQ(*paths, expected);
}

TEST(Connectivity, DisjointPathsAdjacentPair) {
  Graph g = complete_graph(5);
  const auto paths = vertex_disjoint_paths(g, 0, 1, 4);
  ASSERT_TRUE(paths.has_value());
  EXPECT_EQ(paths->size(), 4u);
}

TEST(Connectivity, MinimumVertexCut) {
  // Two triangles joined at vertices 2,3 (a 2-cut).
  Graph g = Graph::from_edges(
      6, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4},
                           {3, 5}, {4, 5}, {0, 3}, {1, 2}});
  const auto cut = minimum_vertex_cut(g);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(static_cast<std::int32_t>(cut->size()), vertex_connectivity(g));
  EXPECT_FALSE(is_connected_after_node_removal(g, *cut));
  EXPECT_FALSE(minimum_vertex_cut(complete_graph(4)).has_value());
}

TEST(Connectivity, ArticulationPoints) {
  // Barbell: triangle 0-1-2, bridge 2-3, triangle 3-4-5.
  Graph g = Graph::from_edges(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4},
                           {4, 5}, {3, 5}});
  const auto cuts = articulation_points(g);
  EXPECT_EQ(cuts, (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(articulation_points(cycle_graph(5)).empty());
  EXPECT_EQ(articulation_points(path_graph(4)),
            (std::vector<NodeId>{1, 2}));
}

TEST(Connectivity, Bridges) {
  Graph g = Graph::from_edges(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4},
                           {4, 5}, {3, 5}});
  EXPECT_EQ(bridges(g), (std::vector<Edge>{{2, 3}}));
  EXPECT_TRUE(bridges(cycle_graph(6)).empty());
  EXPECT_EQ(bridges(path_graph(3)), (std::vector<Edge>{{0, 1}, {1, 2}}));
}

// Property sweep: flow-based κ and λ agree with brute force on random
// small graphs across densities.
class ConnectivityBruteforceAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConnectivityBruteforceAgreement, KappaAndLambdaMatch) {
  const auto [n, m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const auto max_m = static_cast<std::int64_t>(n) * (n - 1) / 2;
  Graph g = random_gnm(static_cast<NodeId>(n),
                       std::min<std::int64_t>(m, max_m), rng);
  EXPECT_EQ(vertex_connectivity(g), kappa_bruteforce(g));
  EXPECT_EQ(edge_connectivity(g), lambda_bruteforce(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConnectivityBruteforceAgreement,
    ::testing::Combine(::testing::Values(5, 6, 7, 8),
                       ::testing::Values(4, 7, 10, 14),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace lhg::core
