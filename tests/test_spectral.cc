// Tests for spectral gap estimation against closed-form eigenvalues.
//
// Lazy-walk spectrum:  μ = (1 + λ_normalized) / 2, so
//   cycle C_n:    μ₂ = (1 + cos(2π/n)) / 2
//   complete K_n: μ₂ = (1 − 1/(n−1)) / 2
//   hypercube Q_d: μ₂ = (1 + (d−2)/d) / 2 = (d−1)/d
//   K_{a,a}:      μ₂ = 1/2 (normalized λ₂ = 0)

#include "core/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/random_graphs.h"
#include "core/special.h"
#include "harary/harary.h"
#include "lhg/lhg.h"

namespace lhg::core {
namespace {

TEST(Spectral, CycleMatchesClosedForm) {
  for (const NodeId n : {8, 16, 32}) {
    const auto estimate = lazy_walk_lambda2(cycle_graph(n));
    const double expected =
        (1.0 + std::cos(2.0 * std::numbers::pi / n)) / 2.0;
    EXPECT_NEAR(estimate.lambda2, expected, 1e-6) << "n=" << n;
    EXPECT_TRUE(estimate.converged);
  }
}

TEST(Spectral, CompleteGraphMatchesClosedForm) {
  const auto estimate = lazy_walk_lambda2(complete_graph(10));
  EXPECT_NEAR(estimate.lambda2, (1.0 - 1.0 / 9.0) / 2.0, 1e-6);
}

TEST(Spectral, HypercubeMatchesClosedForm) {
  for (const std::int32_t d : {3, 4, 5}) {
    const auto estimate = lazy_walk_lambda2(hypercube(d));
    EXPECT_NEAR(estimate.lambda2, static_cast<double>(d - 1) / d, 1e-6)
        << "d=" << d;
  }
}

TEST(Spectral, BipartiteLazyWalkHasNoAlias) {
  // K_{3,3} normalized spectrum {1, 0, 0, 0, 0, −1}: the lazy transform
  // maps the −1 to 0, so μ₂ = 1/2, not 1.
  const auto estimate = lazy_walk_lambda2(complete_bipartite(3, 3));
  EXPECT_NEAR(estimate.lambda2, 0.5, 1e-6);
}

TEST(Spectral, DisconnectedGraphHasZeroGap) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}});
  const auto estimate = lazy_walk_lambda2(g);
  EXPECT_DOUBLE_EQ(estimate.lambda2, 1.0);
  EXPECT_DOUBLE_EQ(estimate.gap, 0.0);
}

TEST(Spectral, Validation) {
  EXPECT_THROW(lazy_walk_lambda2(Graph::from_edges(0, {})),
               std::invalid_argument);
  EXPECT_THROW(lazy_walk_lambda2(Graph::from_edges(2, {})),
               std::invalid_argument);
  EXPECT_THROW(sweep_conductance(star_graph(1)), std::invalid_argument);
}

TEST(Spectral, SweepConductanceKnownCuts) {
  // C_16's best sweep cut is the half-ring: cut 2, volume 16 -> 1/8.
  EXPECT_NEAR(sweep_conductance(cycle_graph(16)), 2.0 / 16.0, 1e-9);
  // A barbell (two K5s joined by one edge) has conductance ~1/21.
  GraphBuilder builder(10);
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) {
      builder.add_edge(i, j);
      builder.add_edge(i + 5, j + 5);
    }
  }
  builder.add_edge(4, 5);
  const double phi = sweep_conductance(builder.build());
  EXPECT_NEAR(phi, 1.0 / 21.0, 1e-9);
}

TEST(Spectral, CheegerInequalityHolds) {
  // φ²/2 <= 1 − μ₂(lazy-normalized gap relation): verify on a zoo.
  for (const auto& g :
       {cycle_graph(12), hypercube(4), petersen(), lhg::build(46, 3),
        harary::circulant(30, 4)}) {
    const auto estimate = lazy_walk_lambda2(g);
    const auto phi = sweep_conductance(g);
    // The lazy-walk gap is half the normalized gap.
    const double normalized_gap = 2.0 * estimate.gap;
    EXPECT_LE(normalized_gap / 2.0, phi + 1e-6);       // gap/2 <= φ
    EXPECT_LE(phi * phi / 2.0, normalized_gap + 1e-6); // φ²/2 <= gap
  }
}

TEST(Spectral, ExpansionOrdering) {
  // The E16 story at one size: random k-regular > LHG > circulant.
  const std::int32_t k = 4;
  const NodeId n = 302;
  Rng rng(5);
  const auto lhg_gap = lazy_walk_lambda2(lhg::build(n, k)).gap;
  const auto harary_gap =
      lazy_walk_lambda2(harary::circulant(n, k)).gap;
  const auto random_gap =
      lazy_walk_lambda2(random_regular_connected(n, k, rng)).gap;
  EXPECT_GT(lhg_gap, harary_gap);
  EXPECT_GT(random_gap, lhg_gap);
}

}  // namespace
}  // namespace lhg::core
