// Installs the throwing contract-failure handler for the whole test
// binary (static initializers run before main, hence before any test).
// Contract failures then surface as catchable ContractViolation — which
// is a std::invalid_argument — instead of aborting the process, so
// death paths are ordinary EXPECT_THROW tests.

#include "core/check.h"

namespace {

[[maybe_unused]] const bool kHandlerInstalled = [] {
  lhg::core::set_check_failure_handler(
      &lhg::core::throwing_check_failure_handler);
  return true;
}();

}  // namespace
