// Tests for canonical plan deltas: applying plan_delta(from, to) to the
// realized from-graph must reproduce the realized to-graph exactly, and
// delta sizes must match the O(k) / O(k²) bounds the incremental
// membership engine depends on.

#include "lhg/plan_delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/check.h"
#include "lhg/assemble.h"
#include "lhg/lhg.h"

namespace lhg {
namespace {

using core::Edge;
using core::NodeId;

/// Applies a delta to the realized from-graph: drop removed_edges,
/// translate survivors through slot_map, append added_edges.  Dies (via
/// gtest assertions) if the delta is inconsistent with the from-graph.
core::Graph apply_delta(const core::Graph& from_g, const PlanDelta& d,
                        NodeId to_n) {
  std::vector<Edge> edges;
  std::size_t ri = 0;
  for (const Edge& e : from_g.edges()) {
    if (ri < d.removed_edges.size() && d.removed_edges[ri] == e) {
      ++ri;
      continue;
    }
    const NodeId u = d.slot_map[static_cast<std::size_t>(e.u)];
    const NodeId v = d.slot_map[static_cast<std::size_t>(e.v)];
    EXPECT_GE(u, 0) << "surviving edge endpoint dissolved: " << e.u;
    EXPECT_GE(v, 0) << "surviving edge endpoint dissolved: " << e.v;
    edges.push_back(core::canonical(u, v));
  }
  // Every removed edge must actually exist in the from-graph.
  EXPECT_EQ(ri, d.removed_edges.size());
  edges.insert(edges.end(), d.added_edges.begin(), d.added_edges.end());
  return core::Graph::from_edges(to_n, edges);
}

void check_delta_well_formed(const PlanDelta& d, std::int64_t from_n,
                             std::int64_t to_n) {
  EXPECT_EQ(d.slot_map.size(), static_cast<std::size_t>(from_n));
  EXPECT_TRUE(std::is_sorted(d.freed_slots.begin(), d.freed_slots.end()));
  EXPECT_TRUE(std::is_sorted(d.new_slots.begin(), d.new_slots.end()));
  EXPECT_TRUE(
      std::is_sorted(d.removed_edges.begin(), d.removed_edges.end()));
  EXPECT_TRUE(std::is_sorted(d.added_edges.begin(), d.added_edges.end()));
  // Matched elements on both sides balance: n - freed == n' - new.
  EXPECT_EQ(from_n - static_cast<std::int64_t>(d.freed_slots.size()),
            to_n - static_cast<std::int64_t>(d.new_slots.size()));
  // slot_map is injective into [0, to_n) away from freed slots.
  std::vector<NodeId> images;
  for (NodeId s = 0; s < static_cast<NodeId>(from_n); ++s) {
    const NodeId t = d.slot_map[static_cast<std::size_t>(s)];
    if (t < 0) continue;
    EXPECT_LT(t, to_n);
    images.push_back(t);
  }
  std::sort(images.begin(), images.end());
  EXPECT_TRUE(std::adjacent_find(images.begin(), images.end()) ==
              images.end());
}

struct Grid {
  Constraint c;
  std::int32_t k;
  NodeId lo;
  NodeId hi;
};

const Grid kGrids[] = {
    {Constraint::kKTree, 3, 6, 120},
    {Constraint::kKTree, 4, 8, 140},
    {Constraint::kKDiamond, 3, 9, 120},
    {Constraint::kKDiamond, 4, 12, 140},
    {Constraint::kStrictJD, 3, 6, 120},
};

TEST(PlanDelta, ConsecutiveSizesRoundTripAcrossAllConstraints) {
  for (const Grid& grid : kGrids) {
    NodeId prev = -1;
    for (NodeId n = grid.lo; n <= grid.hi; ++n) {
      if (!exists(n, grid.k, grid.c)) continue;
      if (prev >= 0) {
        SCOPED_TRACE(testing::Message()
                     << to_string(grid.c) << " k=" << grid.k << " " << prev
                     << "->" << n);
        const auto from = plan(prev, grid.k, grid.c);
        const auto to = plan(n, grid.k, grid.c);
        const auto d = plan_delta(from, to);
        check_delta_well_formed(d, prev, n);
        const auto from_g = assemble(from);
        const auto to_g = assemble(to);
        EXPECT_EQ(apply_delta(from_g, d, n), to_g);
        // And the reverse direction (a leave) round-trips too.
        const auto rd = plan_delta(to, from);
        check_delta_well_formed(rd, n, prev);
        EXPECT_EQ(apply_delta(to_g, rd, prev), from_g);
      }
      prev = n;
    }
  }
}

TEST(PlanDelta, BatchedJumpsRoundTrip) {
  for (const Grid& grid : kGrids) {
    std::vector<NodeId> sizes;
    for (NodeId n = grid.lo; n <= grid.hi; ++n) {
      if (exists(n, grid.k, grid.c)) sizes.push_back(n);
    }
    ASSERT_GE(sizes.size(), 8u);
    // Jump several realizable sizes at once, both directions.
    for (std::size_t i = 0; i + 7 < sizes.size(); i += 7) {
      const NodeId a = sizes[i];
      const NodeId b = sizes[i + 7];
      SCOPED_TRACE(testing::Message() << to_string(grid.c) << " k=" << grid.k
                                      << " " << a << "<->" << b);
      const auto pa = plan(a, grid.k, grid.c);
      const auto pb = plan(b, grid.k, grid.c);
      const auto d = plan_delta(pa, pb);
      check_delta_well_formed(d, a, b);
      EXPECT_EQ(apply_delta(assemble(pa), d, b), assemble(pb));
    }
  }
}

TEST(PlanDelta, IdenticalPlansYieldEmptyDelta) {
  const auto p = plan(60, 4, Constraint::kKDiamond);
  const auto d = plan_delta(p, p);
  EXPECT_TRUE(d.freed_slots.empty());
  EXPECT_TRUE(d.new_slots.empty());
  EXPECT_EQ(d.rewired(), 0);
  for (NodeId s = 0; s < 60; ++s) {
    EXPECT_EQ(d.slot_map[static_cast<std::size_t>(s)], s);
  }
}

// The bound the tentpole advertises: a single size step rewires O(k²)
// edges at reshape boundaries and exactly k at non-reshaping joins —
// never a whole subtree.  3k² covers promoting one leaf to an interior
// (k tree edges + re-homing the displaced leaf attachments); measured
// maxima over full sweeps: exactly 3k²-2k for K-TREE (tight), plus a
// few clique edges for K-DIAMOND's shared/unshared parity transition.
TEST(PlanDelta, SingleStepRewiringIsBoundedByKSquared) {
  for (const Grid& grid : kGrids) {
    const std::int64_t bound =
        3 * static_cast<std::int64_t>(grid.k) * grid.k;
    NodeId prev = -1;
    std::int64_t max_seen = 0;
    for (NodeId n = grid.lo; n <= grid.hi; ++n) {
      if (!exists(n, grid.k, grid.c)) continue;
      if (prev >= 0 && n == prev + 1) {
        const auto d =
            plan_delta(plan(prev, grid.k, grid.c), plan(n, grid.k, grid.c));
        max_seen = std::max(max_seen, d.rewired());
        EXPECT_LE(d.rewired(), bound)
            << to_string(grid.c) << " k=" << grid.k << " " << prev << "->"
            << n;
        if (d.freed_slots.empty()) {
          // Non-reshaping join: exactly the k attachments of one leaf.
          EXPECT_TRUE(d.removed_edges.empty());
          EXPECT_EQ(d.added_edges.size(),
                    static_cast<std::size_t>(grid.k));
        }
      }
      prev = n;
    }
    // The sweep must actually exercise a reshape boundary.
    EXPECT_GT(max_seen, grid.k) << to_string(grid.c) << " k=" << grid.k;
  }
}

TEST(PlanDelta, RejectsMismatchedK) {
  const auto a = plan(20, 3, Constraint::kKTree);
  const auto b = plan(20, 4, Constraint::kKTree);
  EXPECT_THROW(plan_delta(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace lhg
