// Whitney's inequality κ(G) <= λ(G) <= δ(G) as a randomized property
// test over the full generator zoo — a cross-cutting consistency check
// of the connectivity engine on inputs it was not written around.

#include <gtest/gtest.h>

#include <tuple>

#include "core/connectivity.h"
#include "core/random_graphs.h"
#include "core/rng.h"
#include "core/special.h"
#include "harary/harary.h"
#include "lhg/lhg.h"

namespace lhg::core {
namespace {

void expect_whitney(const Graph& g, const std::string& label) {
  if (g.num_nodes() < 2) return;
  const auto kappa = vertex_connectivity(g);
  const auto lambda = edge_connectivity(g);
  EXPECT_LE(kappa, lambda) << label;
  EXPECT_LE(lambda, g.min_degree()) << label;
}

TEST(Whitney, HoldsOnSpecialFamilies) {
  expect_whitney(path_graph(9), "path");
  expect_whitney(cycle_graph(9), "cycle");
  expect_whitney(complete_graph(7), "complete");
  expect_whitney(complete_bipartite(3, 5), "bipartite");
  expect_whitney(star_graph(8), "star");
  expect_whitney(hypercube(4), "hypercube");
  expect_whitney(petersen(), "petersen");
  expect_whitney(binary_tree(10), "binary tree");
}

class WhitneyRandom : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WhitneyRandom, HoldsOnGnm) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 101 + 7);
  for (const std::int64_t m :
       {static_cast<std::int64_t>(n), 2L * n, 3L * n}) {
    const auto max_m = static_cast<std::int64_t>(n) * (n - 1) / 2;
    Graph g = random_gnm(static_cast<NodeId>(n), std::min(m, max_m), rng);
    expect_whitney(g, "gnm");
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WhitneyRandom,
                         ::testing::Combine(::testing::Values(10, 17, 25, 40),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(Whitney, EqualityOnConstructedOverlays) {
  // For LHGs and Harary graphs the chain collapses: κ = λ = δ = k.
  for (const std::int32_t k : {3, 4, 5}) {
    const auto n = static_cast<NodeId>(2 * k + 4 * (k - 1));
    for (const auto constraint :
         {Constraint::kKTree, Constraint::kKDiamond}) {
      const auto g = build(n, k, constraint);
      EXPECT_EQ(vertex_connectivity(g), k);
      EXPECT_EQ(edge_connectivity(g), k);
      EXPECT_EQ(g.min_degree(), k);
    }
    const auto h = harary::circulant(n, k);
    EXPECT_EQ(vertex_connectivity(h), k);
    EXPECT_EQ(edge_connectivity(h), k);
  }
}

}  // namespace
}  // namespace lhg::core
