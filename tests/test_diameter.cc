// Unit and property tests for exact diameter computation.

#include "core/diameter.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/random_graphs.h"
#include "core/rng.h"

namespace lhg::core {
namespace {

Graph path_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.push_back({i, static_cast<NodeId>(i + 1)});
  return Graph::from_edges(n, edges);
}

Graph cycle_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < n; ++i) edges.push_back({i, static_cast<NodeId>((i + 1) % n)});
  return Graph::from_edges(n, edges);
}

Graph complete_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return Graph::from_edges(n, edges);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(path_graph(10)), 9);
  EXPECT_EQ(diameter(cycle_graph(10)), 5);
  EXPECT_EQ(diameter(cycle_graph(11)), 5);
  EXPECT_EQ(diameter(complete_graph(7)), 1);
  EXPECT_EQ(diameter(Graph::from_edges(1, {})), 0);
}

TEST(Diameter, ApspOracleAgrees) {
  EXPECT_EQ(diameter_apsp(path_graph(17)), 16);
  EXPECT_EQ(diameter_apsp(cycle_graph(9)), 4);
}

TEST(Diameter, ThrowsOnDisconnectedOrEmpty) {
  EXPECT_THROW(diameter(Graph::from_edges(0, {})), std::invalid_argument);
  EXPECT_THROW(diameter(Graph::from_edges(3, std::vector<Edge>{{0, 1}})),
               std::invalid_argument);
  EXPECT_THROW(diameter_apsp(Graph::from_edges(2, {})), std::invalid_argument);
}

TEST(Diameter, AveragePathLength) {
  // Path of 3: ordered pairs (0,1)=1 (0,2)=2 (1,2)=1 and symmetric: mean 4/3.
  EXPECT_NEAR(average_path_length(path_graph(3)), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(average_path_length(complete_graph(5)), 1.0, 1e-12);
  EXPECT_THROW(average_path_length(Graph::from_edges(1, {})),
               std::invalid_argument);
}

TEST(Diameter, Radius) {
  EXPECT_EQ(radius(path_graph(9)), 4);
  EXPECT_EQ(radius(cycle_graph(8)), 4);
  EXPECT_EQ(radius(complete_graph(4)), 1);
}

// Property sweep: iFUB must agree with the all-pairs oracle on random
// connected graphs of varied density.
class DiameterRandomAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DiameterRandomAgreement, IfubMatchesApsp) {
  const auto [n, extra_edges, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  // Random connected graph: spanning path + random extra edges.
  GraphBuilder builder(n);
  for (NodeId i = 0; i + 1 < n; ++i) builder.add_edge(i, i + 1);
  for (int e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) builder.add_edge(u, v);
  }
  Graph g = builder.build();
  EXPECT_EQ(diameter(g), diameter_apsp(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiameterRandomAgreement,
    ::testing::Combine(::testing::Values(8, 33, 64, 120),
                       ::testing::Values(0, 5, 40),
                       ::testing::Values(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace lhg::core
