// Property tests for the node-id layout of pasted LHGs: the three
// populations (replicated interiors, shared leaves, unshared groups)
// must tile the id space exactly, and every edge of the realized graph
// must be one of the four legal kinds.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "lhg/lhg.h"

namespace lhg {
namespace {

using core::NodeId;

enum class NodeKind { kInterior, kSharedLeaf, kGroupMember };

NodeKind kind_of(const Layout& layout, NodeId node) {
  if (node < layout.k * layout.num_interiors) return NodeKind::kInterior;
  if (node < layout.k * layout.num_interiors + layout.num_shared_leaves) {
    return NodeKind::kSharedLeaf;
  }
  return NodeKind::kGroupMember;
}

class LayoutSweep
    : public ::testing::TestWithParam<std::tuple<Constraint, int, int>> {};

TEST_P(LayoutSweep, PopulationsTileAndEdgesAreLegal) {
  const auto [constraint, k, offset] = GetParam();
  const std::int64_t n = 2 * k + offset;
  if (!exists(n, k, constraint)) GTEST_SKIP();
  Layout layout;
  const auto g = build_with_layout(static_cast<NodeId>(n), k, constraint,
                                   &layout);

  // Id accessors are mutually consistent and bijective.
  EXPECT_EQ(layout.total_nodes(), n);
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  for (std::int32_t c = 0; c < layout.k; ++c) {
    for (std::int32_t i = 0; i < layout.num_interiors; ++i) {
      ++hits[static_cast<std::size_t>(layout.interior(c, i))];
    }
  }
  for (std::int32_t s = 0; s < layout.num_shared_leaves; ++s) {
    ++hits[static_cast<std::size_t>(layout.shared_leaf(s))];
  }
  for (std::int32_t q = 0; q < layout.num_unshared_groups; ++q) {
    for (std::int32_t c = 0; c < layout.k; ++c) {
      ++hits[static_cast<std::size_t>(layout.group_member(q, c))];
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(hits[static_cast<std::size_t>(u)], 1) << "node " << u;
  }

  // Every edge is one of: tree edge (same copy), leaf attachment,
  // group attachment, or clique edge (same group).
  for (const auto e : g.edges()) {
    const auto ku = kind_of(layout, e.u);
    const auto kv = kind_of(layout, e.v);
    if (ku == NodeKind::kInterior && kv == NodeKind::kInterior) {
      std::int32_t cu = 0;
      std::int32_t cv = 0;
      std::int32_t iu = 0;
      std::int32_t iv = 0;
      ASSERT_TRUE(layout.classify_interior(e.u, &cu, &iu));
      ASSERT_TRUE(layout.classify_interior(e.v, &cv, &iv));
      EXPECT_EQ(cu, cv) << "tree edge crosses copies: " << e.u << "-" << e.v;
    } else if (ku == NodeKind::kGroupMember && kv == NodeKind::kGroupMember) {
      const auto base = layout.k * layout.num_interiors + layout.num_shared_leaves;
      EXPECT_EQ((e.u - base) / layout.k, (e.v - base) / layout.k)
          << "clique edge crosses groups";
    } else {
      // Mixed edges must involve exactly one interior.
      EXPECT_TRUE(ku == NodeKind::kInterior || kv == NodeKind::kInterior)
          << "leaf-leaf edge " << e.u << "-" << e.v;
    }
  }

  // Shared leaves touch all k copies; group members exactly one.
  for (std::int32_t s = 0; s < layout.num_shared_leaves; ++s) {
    EXPECT_EQ(g.degree(layout.shared_leaf(s)), layout.k);
  }
  for (std::int32_t q = 0; q < layout.num_unshared_groups; ++q) {
    for (std::int32_t c = 0; c < layout.k; ++c) {
      EXPECT_EQ(g.degree(layout.group_member(q, c)), layout.k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LayoutSweep,
    ::testing::Combine(::testing::Values(Constraint::kStrictJD,
                                         Constraint::kKTree,
                                         Constraint::kKDiamond),
                       ::testing::Values(2, 3, 4, 6),
                       ::testing::Values(0, 1, 2, 5, 9, 16, 33)));

TEST(Layout, ClassifyInteriorRejectsLeaves) {
  Layout layout;
  build_with_layout(14, 3, Constraint::kKDiamond, &layout);
  std::int32_t copy = 0;
  std::int32_t interior = 0;
  EXPECT_FALSE(layout.classify_interior(
      layout.shared_leaf(0), &copy, &interior));
  EXPECT_FALSE(layout.classify_interior(-1, &copy, &interior));
  EXPECT_TRUE(layout.classify_interior(layout.root(2), &copy, &interior));
  EXPECT_EQ(copy, 2);
  EXPECT_EQ(interior, 0);
}

}  // namespace
}  // namespace lhg
