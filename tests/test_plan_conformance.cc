// Rule-conformance tests: the planners must respect the letter of each
// constraint, not merely produce connected graphs.  These inspect the
// abstract TreePlan directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "lhg/jd.h"
#include "lhg/kdiamond.h"
#include "lhg/ktree.h"
#include "lhg/lhg.h"

namespace lhg {
namespace {

/// Children per interior: (interior kids, leaf kids).
std::map<std::int32_t, std::pair<std::int32_t, std::int32_t>> child_counts(
    const TreePlan& plan) {
  std::map<std::int32_t, std::pair<std::int32_t, std::int32_t>> counts;
  for (std::int32_t i = 0; i < plan.num_interiors(); ++i) counts[i] = {0, 0};
  for (std::int32_t i = 1; i < plan.num_interiors(); ++i) {
    ++counts[plan.interior_parent[static_cast<std::size_t>(i)]].first;
  }
  for (std::int32_t p : plan.leaf_parent) ++counts[p].second;
  return counts;
}

class StrictJdConformance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StrictJdConformance, RespectsExceptionBudget) {
  const auto [k, offset] = GetParam();
  const std::int64_t n = 2 * k + offset;
  const auto maybe_plan = jd::plan(n, k);
  if (!maybe_plan.has_value()) {
    EXPECT_FALSE(jd::exists(n, k));
    return;
  }
  const TreePlan& tree = *maybe_plan;
  EXPECT_EQ(tree.realized_nodes(), n);
  // Strict J&D: no unshared leaves, root has >= k children, interiors
  // have k-1..k+1 children, and at most k interiors exceed k-1.
  EXPECT_EQ(tree.num_unshared_groups(), 0);
  std::int32_t exceptions = 0;
  for (const auto& [interior, kids] : child_counts(tree)) {
    const auto total = kids.first + kids.second;
    const auto base = interior == 0 ? k : k - 1;
    EXPECT_GE(total, base) << "interior " << interior;
    EXPECT_LE(total, base + jd::kMaxAddedPerException) << "interior " << interior;
    if (total > base) {
      ++exceptions;
      EXPECT_GT(kids.second, 0) << "exception without leaf children";
    }
  }
  EXPECT_LE(exceptions, k);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrictJdConformance,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6),
                       ::testing::Range(0, 30)));

class KTreeConformance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KTreeConformance, RespectsRuleThreeD) {
  const auto [k, offset] = GetParam();
  const std::int64_t n = 2 * k + offset;
  const TreePlan tree = ktree::plan(n, k);
  EXPECT_EQ(tree.realized_nodes(), n);
  EXPECT_EQ(tree.num_unshared_groups(), 0);
  for (const auto& [interior, kids] : child_counts(tree)) {
    const auto base = interior == 0 ? k : k - 1;
    const auto total = kids.first + kids.second;
    EXPECT_GE(total, base);
    // Rule 3d: at most 2k-3 ADDED leaves per node just above the leaves.
    EXPECT_LE(total - base, ktree::max_added_per_bottom(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KTreeConformance,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 8),
                       ::testing::Range(0, 30)));

class KDiamondConformance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KDiamondConformance, RespectsRulesFourAndFiveD) {
  const auto [k, offset] = GetParam();
  const std::int64_t n = 2 * k + offset;
  const TreePlan tree = kdiamond::plan(n, k);
  EXPECT_EQ(tree.realized_nodes(), n);
  for (const auto& [interior, kids] : child_counts(tree)) {
    const auto base = interior == 0 ? k : k - 1;
    const auto total = kids.first + kids.second;
    EXPECT_GE(total, base);
    // Rule 5d: at most k-2 added leaves.
    EXPECT_LE(total - base, kdiamond::max_added_per_bottom(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KDiamondConformance,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 8),
                       ::testing::Range(0, 30)));

TEST(PlanIntrospection, PlanMatchesBuild) {
  // lhg::plan must describe exactly the graph lhg::build realizes.
  for (const auto constraint :
       {Constraint::kStrictJD, Constraint::kKTree, Constraint::kKDiamond}) {
    for (const std::int32_t k : {3, 4}) {
      for (std::int64_t n = 2 * k; n <= 2 * k + 12; ++n) {
        if (!exists(n, k, constraint)) continue;
        const auto tree = plan(n, k, constraint);
        const auto g = build(static_cast<core::NodeId>(n), k, constraint);
        EXPECT_EQ(tree.realized_nodes(), g.num_nodes());
        // Edge count: k(I-1) tree edges per copy + k per shared leaf +
        // (k + C(k,2)) per unshared group.
        const std::int64_t expected_edges =
            static_cast<std::int64_t>(k) * (tree.num_interiors() - 1) +
            static_cast<std::int64_t>(k) * tree.num_shared_leaves() +
            tree.num_unshared_groups() *
                (k + static_cast<std::int64_t>(k) * (k - 1) / 2);
        EXPECT_EQ(g.num_edges(), expected_edges)
            << to_string(constraint) << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(PlanIntrospection, StrictJdPrefersLargestTree) {
  // The planner absorbs slack with the deepest (most regular) tree:
  // on lattice points there are zero exceptions.
  for (const std::int32_t k : {3, 5}) {
    for (std::int64_t alpha = 0; alpha <= 5; ++alpha) {
      const auto n = 2 * k + 2 * alpha * (k - 1);
      const auto tree = jd::plan(n, k);
      ASSERT_TRUE(tree.has_value());
      EXPECT_EQ(tree->num_interiors(), alpha + 1);
      EXPECT_EQ(tree->num_leaves(), k + alpha * (k - 2));
    }
  }
}

}  // namespace
}  // namespace lhg
