// Unit tests for the deterministic RNG.

#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace lhg::core {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.next_in(5, 5), 5);
  EXPECT_THROW(rng.next_in(2, 1), std::invalid_argument);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(std::span<int>(v));
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += v[static_cast<std::size_t>(i)] != i;
  EXPECT_GT(moved, 50);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(1000, 50);
  EXPECT_EQ(sample.size(), 50u);
  std::set<std::int32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  for (auto v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(Rng, SampleWholeUniverse) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::int32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleValidation) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
  EXPECT_THROW(rng.sample_without_replacement(-1, 0), std::invalid_argument);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng a(41);
  Rng child_a = a.split();
  Rng b(41);
  Rng child_b = b.split();
  // Deterministic: two splits from identical parents agree.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a(), child_b());
  // Independent: the child stream does not replay the parent stream.
  Rng parent(41);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child() == parent()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SparseSamplePath) {
  Rng rng(43);
  // universe >> count forces the hash-set rejection path.
  const auto sample = rng.sample_without_replacement(2000000, 10);
  std::set<std::int32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace lhg::core
