// Unit tests for the Dinic max-flow engine.

#include "core/maxflow.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lhg::core {
namespace {

TEST(MaxFlow, SingleArc) {
  FlowNetwork net(2);
  net.add_arc(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 7);
  net.add_arc(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(MaxFlow, ParallelPathsAdd) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 2);
  net.add_arc(1, 3, 2);
  net.add_arc(0, 2, 3);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

TEST(MaxFlow, ClassicTextbookNetwork) {
  // CLRS figure: max flow 23.
  FlowNetwork net(6);
  net.add_arc(0, 1, 16);
  net.add_arc(0, 2, 13);
  net.add_arc(1, 2, 10);
  net.add_arc(2, 1, 4);
  net.add_arc(1, 3, 12);
  net.add_arc(3, 2, 9);
  net.add_arc(2, 4, 14);
  net.add_arc(4, 3, 7);
  net.add_arc(3, 5, 20);
  net.add_arc(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(MaxFlow, RequiresResidualRerouting) {
  // The only max solution reroutes flow pushed greedily through the
  // middle arc.
  FlowNetwork net(4);
  net.add_arc(0, 1, 1);
  net.add_arc(0, 2, 1);
  net.add_arc(1, 2, 1);
  net.add_arc(1, 3, 1);
  net.add_arc(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
}

TEST(MaxFlow, LimitStopsEarly) {
  FlowNetwork net(2);
  net.add_arc(0, 1, 100);
  EXPECT_EQ(net.max_flow(0, 1, 7), 7);
}

TEST(MaxFlow, DisconnectedIsZero) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 4);
  EXPECT_EQ(net.max_flow(0, 2), 0);
}

TEST(MaxFlow, FlowOnReportsPerArc) {
  FlowNetwork net(3);
  const auto a01 = net.add_arc(0, 1, 2);
  const auto a12 = net.add_arc(1, 2, 9);
  EXPECT_EQ(net.max_flow(0, 2), 2);
  EXPECT_EQ(net.flow_on(a01), 2);
  EXPECT_EQ(net.flow_on(a12), 2);
  EXPECT_THROW(net.flow_on(99), std::invalid_argument);
}

TEST(MaxFlow, MinCutSourceSide) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 10);
  net.add_arc(1, 2, 1);  // the bottleneck
  net.add_arc(2, 3, 10);
  EXPECT_EQ(net.max_flow(0, 3), 1);
  const auto side = net.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, Validation) {
  EXPECT_THROW(FlowNetwork(-1), std::invalid_argument);
  FlowNetwork net(2);
  EXPECT_THROW(net.add_arc(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(net.add_arc(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(net.max_flow(0, 0), std::invalid_argument);
  EXPECT_THROW(net.max_flow(0, 9), std::invalid_argument);
}

TEST(MaxFlow, UnitBipartiteMatchingShape) {
  // 3x3 bipartite unit network, perfect matching = 3.
  FlowNetwork net(8);  // 0 src, 1..3 left, 4..6 right, 7 sink
  for (int l = 1; l <= 3; ++l) net.add_arc(0, l, 1);
  for (int r = 4; r <= 6; ++r) net.add_arc(r, 7, 1);
  net.add_arc(1, 4, 1);
  net.add_arc(1, 5, 1);
  net.add_arc(2, 4, 1);
  net.add_arc(3, 6, 1);
  EXPECT_EQ(net.max_flow(0, 7), 3);
}

}  // namespace
}  // namespace lhg::core
