// Unit tests for the push-relabel max-flow engine, including the
// reusable-query contract (one network, many (s, t, limit) questions)
// and cross-checks against the retired Dinic reference
// (core/testing/reference_flow.h).

#include "core/maxflow.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/random_graphs.h"
#include "core/rng.h"
#include "core/testing/reference_flow.h"

namespace lhg::core {
namespace {

TEST(MaxFlow, SingleArc) {
  PushRelabel net(2);
  net.add_arc(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  PushRelabel net(3);
  net.add_arc(0, 1, 7);
  net.add_arc(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(MaxFlow, ParallelPathsAdd) {
  PushRelabel net(4);
  net.add_arc(0, 1, 2);
  net.add_arc(1, 3, 2);
  net.add_arc(0, 2, 3);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

TEST(MaxFlow, ClassicTextbookNetwork) {
  // CLRS figure: max flow 23.
  PushRelabel net(6);
  net.add_arc(0, 1, 16);
  net.add_arc(0, 2, 13);
  net.add_arc(1, 2, 10);
  net.add_arc(2, 1, 4);
  net.add_arc(1, 3, 12);
  net.add_arc(3, 2, 9);
  net.add_arc(2, 4, 14);
  net.add_arc(4, 3, 7);
  net.add_arc(3, 5, 20);
  net.add_arc(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(MaxFlow, RequiresResidualRerouting) {
  // The only max solution reroutes flow pushed greedily through the
  // middle arc.
  PushRelabel net(4);
  net.add_arc(0, 1, 1);
  net.add_arc(0, 2, 1);
  net.add_arc(1, 2, 1);
  net.add_arc(1, 3, 1);
  net.add_arc(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
}

TEST(MaxFlow, LimitStopsEarly) {
  PushRelabel net(2);
  net.add_arc(0, 1, 100);
  EXPECT_EQ(net.max_flow(0, 1, 7), 7);
  EXPECT_EQ(net.max_flow(0, 1, 0), 0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  PushRelabel net(3);
  net.add_arc(0, 1, 4);
  EXPECT_EQ(net.max_flow(0, 2), 0);
}

TEST(MaxFlow, ReusableAcrossQueries) {
  // The same solver answers many (source, sink, limit) questions; each
  // call resets per-query state, so answers never depend on history.
  PushRelabel net(4);
  net.add_arc(0, 1, 2);
  net.add_arc(1, 3, 2);
  net.add_arc(0, 2, 3);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
  EXPECT_EQ(net.max_flow(0, 3), 5);     // repeat, same answer
  EXPECT_EQ(net.max_flow(0, 3, 4), 4);  // capped repeat
  EXPECT_EQ(net.max_flow(3, 0), 0);     // reverse direction: no arcs
  EXPECT_EQ(net.max_flow(0, 1), 2);     // different sink
  EXPECT_EQ(net.max_flow(0, 3), 5);     // back to the original query
}

TEST(MaxFlow, SharedScratchAcrossSolvers) {
  MaxflowScratch scratch;
  PushRelabel small(2);
  small.add_arc(0, 1, 1);
  PushRelabel large(5);
  large.add_arc(0, 1, 3);
  large.add_arc(1, 4, 2);
  EXPECT_EQ(small.max_flow(0, 1, INT64_MAX, scratch), 1);
  EXPECT_EQ(large.max_flow(0, 4, INT64_MAX, scratch), 2);
  EXPECT_EQ(small.max_flow(0, 1, INT64_MAX, scratch), 1);
}

TEST(MaxFlow, FlowOnReportsPerArc) {
  PushRelabel net(3);
  const auto a01 = net.add_arc(0, 1, 2);
  const auto a12 = net.add_arc(1, 2, 9);
  EXPECT_EQ(net.max_flow(0, 2), 2);
  net.convert_to_flow();
  EXPECT_EQ(net.flow_on(a01), 2);
  EXPECT_EQ(net.flow_on(a12), 2);
  EXPECT_THROW(net.flow_on(99), std::invalid_argument);
}

TEST(MaxFlow, ConvertToFlowReturnsTrappedExcess) {
  // A dead-end branch absorbs preflow that phase 2 must send back:
  // 0 -> 1 (cap 5) with 1 -> 2 -> sink 3 the only way through (cap 1),
  // plus a trap 1 -> 4 with no exit.
  PushRelabel net(5);
  const auto a01 = net.add_arc(0, 1, 5);
  const auto a12 = net.add_arc(1, 2, 1);
  const auto a23 = net.add_arc(2, 3, 1);
  const auto a14 = net.add_arc(1, 4, 3);
  EXPECT_EQ(net.max_flow(0, 3), 1);
  net.convert_to_flow();
  EXPECT_EQ(net.flow_on(a01), 1);
  EXPECT_EQ(net.flow_on(a12), 1);
  EXPECT_EQ(net.flow_on(a23), 1);
  EXPECT_EQ(net.flow_on(a14), 0);  // trapped excess fully withdrawn
}

TEST(MaxFlow, MinCutSourceSide) {
  PushRelabel net(4);
  net.add_arc(0, 1, 10);
  net.add_arc(1, 2, 1);  // the bottleneck
  net.add_arc(2, 3, 10);
  EXPECT_EQ(net.max_flow(0, 3), 1);
  const auto side = net.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, MinCutValidAfterPhaseOneOnly) {
  // Phase 1 leaves trapped excess on the dead-end branch; the cut read
  // off sink-side reachability must still have capacity == flow value.
  PushRelabel net(5);
  net.add_arc(0, 1, 5);
  net.add_arc(1, 2, 1);
  net.add_arc(2, 3, 1);
  net.add_arc(1, 4, 3);
  EXPECT_EQ(net.max_flow(0, 3), 1);
  const auto side = net.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  // Cut capacity across (S, V-S) counting only forward arcs.
  // Arcs: 0->1 (5), 1->2 (1), 2->3 (1), 1->4 (3).
  struct Arc {
    int u, v;
    std::int64_t cap;
  };
  const std::vector<Arc> arcs{{0, 1, 5}, {1, 2, 1}, {2, 3, 1}, {1, 4, 3}};
  std::int64_t crossing = 0;
  for (const auto& a : arcs) {
    if (side[static_cast<std::size_t>(a.u)] &&
        !side[static_cast<std::size_t>(a.v)]) {
      crossing += a.cap;
    }
  }
  EXPECT_EQ(crossing, 1);
}

TEST(MaxFlow, Validation) {
  EXPECT_THROW(PushRelabel(-1), std::invalid_argument);
  PushRelabel net(2);
  EXPECT_THROW(net.add_arc(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(net.add_arc(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(net.add_arc(0, 1, std::int64_t{1} << 40),
               std::invalid_argument);
  EXPECT_THROW(net.convert_to_flow(), std::invalid_argument);
  EXPECT_THROW(net.max_flow(0, 0), std::invalid_argument);
  EXPECT_THROW(net.max_flow(0, 9), std::invalid_argument);
  net.add_arc(0, 1, 1);
  EXPECT_EQ(net.max_flow(0, 1), 1);
  // The arc structure is frozen by the first query.
  EXPECT_THROW(net.add_arc(1, 0, 1), std::invalid_argument);
}

TEST(MaxFlow, UnitBipartiteMatchingShape) {
  // 3x3 bipartite unit network, perfect matching = 3.
  PushRelabel net(8);  // 0 src, 1..3 left, 4..6 right, 7 sink
  for (int l = 1; l <= 3; ++l) net.add_arc(0, l, 1);
  for (int r = 4; r <= 6; ++r) net.add_arc(r, 7, 1);
  net.add_arc(1, 4, 1);
  net.add_arc(1, 5, 1);
  net.add_arc(2, 4, 1);
  net.add_arc(3, 6, 1);
  EXPECT_EQ(net.max_flow(0, 7), 3);
}

TEST(MaxFlow, AgreesWithDinicOnRandomNetworks) {
  // Randomized cross-check against the reference Dinic: same arcs, same
  // (s, t, limit) queries, identical values.  Capacities include 0 and
  // repeats so degenerate arcs get exercised.
  Rng rng(20260809);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int32_t n =
        4 + static_cast<std::int32_t>(rng.next_below(12));
    const std::int32_t arcs =
        static_cast<std::int32_t>(rng.next_below(60));
    PushRelabel pr(n);
    testing::ReferenceFlowNetwork dinic(n);
    for (std::int32_t a = 0; a < arcs; ++a) {
      const auto u = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      const auto cap = static_cast<std::int64_t>(rng.next_below(7));
      pr.add_arc(u, v, cap);
      dinic.add_arc(u, v, cap);
    }
    const std::int32_t s = 0;
    const std::int32_t t = n - 1;
    const std::int64_t full = pr.max_flow(s, t);
    {
      testing::ReferenceFlowNetwork fresh = dinic;
      ASSERT_EQ(full, fresh.max_flow(s, t)) << "trial " << trial;
    }
    // Capped query, run on the SAME push-relabel solver (reset path).
    const std::int64_t limit = static_cast<std::int64_t>(rng.next_below(5));
    const std::int64_t capped = pr.max_flow(s, t, limit);
    ASSERT_EQ(capped, std::min(full, limit)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace lhg::core
