// Tests for the fatal-subset census.

#include "core/cut_census.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/connectivity.h"
#include "core/special.h"
#include "harary/harary.h"
#include "lhg/lhg.h"

namespace lhg::core {
namespace {

TEST(CutCensus, CycleSingletonsAreNeverFatal) {
  const auto census = fatal_node_subsets(cycle_graph(8), 1);
  EXPECT_EQ(census.subsets_checked, 8);
  EXPECT_EQ(census.fatal, 0);
  EXPECT_FALSE(census.truncated);
}

TEST(CutCensus, CyclePairsCountExactly) {
  // C_8: a pair is fatal iff the two nodes are non-adjacent:
  // C(8,2) − 8 = 20 fatal pairs.
  const auto census = fatal_node_subsets(cycle_graph(8), 2);
  EXPECT_EQ(census.subsets_checked, 28);
  EXPECT_EQ(census.fatal, 20);
}

TEST(CutCensus, PathInteriorSingletonsAreFatal) {
  const auto census = fatal_node_subsets(path_graph(6), 1);
  EXPECT_EQ(census.fatal, 4);  // every non-endpoint
}

TEST(CutCensus, CompleteGraphHasNoCuts) {
  const auto census = fatal_node_subsets(complete_graph(6), 3);
  EXPECT_EQ(census.fatal, 0);
}

TEST(CutCensus, AgreesWithConnectivityThreshold) {
  // For a k-connected graph, subsets below size k are never fatal and
  // at size k at least one is (unless complete).
  const auto g = lhg::build(14, 3);
  EXPECT_EQ(fatal_node_subsets(g, 2).fatal, 0);
  const auto at_k = fatal_node_subsets(g, 3);
  EXPECT_GT(at_k.fatal, 0);
  EXPECT_EQ(vertex_connectivity(g), 3);
}

TEST(CutCensus, TruncationCap) {
  const auto census = fatal_node_subsets(cycle_graph(20), 2, 10);
  EXPECT_EQ(census.subsets_checked, 10);
  EXPECT_TRUE(census.truncated);
}

TEST(CutCensus, SampledEstimateTracksExact) {
  const auto g = cycle_graph(10);
  const auto exact = fatal_node_subsets(g, 2);
  Rng rng(7);
  const auto sampled = sampled_fatal_subsets(g, 2, 4000, rng);
  EXPECT_NEAR(sampled.fatal_fraction(), exact.fatal_fraction(), 0.05);
}

TEST(CutCensus, SubsetCount) {
  EXPECT_DOUBLE_EQ(subset_count(8, 2), 28.0);
  EXPECT_DOUBLE_EQ(subset_count(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(subset_count(5, 0), 1.0);
}

TEST(CutCensus, Validation) {
  const auto g = cycle_graph(5);
  EXPECT_THROW(fatal_node_subsets(g, 0), std::invalid_argument);
  EXPECT_THROW(fatal_node_subsets(g, 5), std::invalid_argument);
  Rng rng(1);
  EXPECT_THROW(sampled_fatal_subsets(g, 2, -1, rng), std::invalid_argument);
}

TEST(CutCensus, LhgVsHararyFragilityCrossover) {
  // The E17 nuance: at subset size exactly k the LHG has MORE minimum
  // cuts than the circulant (every shared leaf's parent set is one),
  // yet at larger subset sizes the ordering flips — the circulant's
  // ring locality makes bigger random subsets far deadlier, which is
  // what the survival experiment E7 measures.
  const core::NodeId n = 18;
  const std::int32_t k = 3;
  const auto lhg_graph = lhg::build(n, k);
  const auto harary_graph = harary::circulant(n, k);

  const auto lhg_at_k = fatal_node_subsets(lhg_graph, k);
  const auto harary_at_k = fatal_node_subsets(harary_graph, k);
  EXPECT_GT(lhg_at_k.fatal, 0);
  EXPECT_GT(harary_at_k.fatal, 0);
  EXPECT_GT(lhg_at_k.fatal, harary_at_k.fatal);  // leaf parent-sets

  const auto lhg_wide = fatal_node_subsets(lhg_graph, 6);
  const auto harary_wide = fatal_node_subsets(harary_graph, 6);
  EXPECT_GT(harary_wide.fatal_fraction(), lhg_wide.fatal_fraction());
}

}  // namespace
}  // namespace lhg::core
