#!/usr/bin/env python3
"""Validate an exported trace against the Chrome trace_event schema.

Consumes the JSON files written by ``obs::write_chrome_trace`` (bench
binaries' ``--trace`` flag) and checks the subset of the Trace Event
Format that chrome://tracing and Perfetto actually require to load the
file:

  * top level is an object with a ``traceEvents`` array
  * every event is an object with a string ``ph`` (a known phase) and
    integer-valued ``pid`` / ``tid``
  * non-metadata events carry a numeric, non-negative ``ts``
  * instant events (``ph: "i"``) carry a valid scope ``s`` in
    {"g", "p", "t"}
  * names are non-empty strings; ``args``, when present, is an object

The sink's own conventions are checked on top: timestamps must be
monotonically non-decreasing (the ring stores events in record order)
and ``otherData.dropped_events``, when present, must be a non-negative
integer.  Exit status 0 means the file loads; 1 means a violation was
found; 2 is a usage/IO error.  stdlib only, CI-friendly.

Usage:
    scripts/trace_check.py trace.json [more.json ...]
"""

import json
import sys

KNOWN_PHASES = {
    "B", "E", "X", "i", "I", "C", "b", "n", "e", "s", "t", "f",
    "P", "N", "O", "D", "M", "V", "v", "R", "c",
}
INSTANT_SCOPES = {"g", "p", "t"}


def fail(path, index, message):
    where = f"{path}: traceEvents[{index}]" if index is not None else path
    print(f"FAIL {where}: {message}")
    return False


def check_event(path, index, event):
    if not isinstance(event, dict):
        return fail(path, index, "event is not an object")
    ph = event.get("ph")
    if not isinstance(ph, str) or ph not in KNOWN_PHASES:
        return fail(path, index, f"bad phase {ph!r}")
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            return fail(path, index, f"{key} must be an integer, got {value!r}")
    name = event.get("name")
    if name is not None and (not isinstance(name, str) or not name):
        return fail(path, index, f"name must be a non-empty string, got {name!r}")
    if "args" in event and not isinstance(event["args"], dict):
        return fail(path, index, "args must be an object")
    if ph == "M":
        return True  # metadata events need no timestamp
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        return fail(path, index, f"ts must be a number, got {ts!r}")
    if ts < 0:
        return fail(path, index, f"ts must be non-negative, got {ts}")
    if ph in ("i", "I"):
        scope = event.get("s", "t")
        if scope not in INSTANT_SCOPES:
            return fail(path, index, f"instant scope must be g/p/t, got {scope!r}")
    return True


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"FAIL {path}: cannot read: {e}")
        return False
    except json.JSONDecodeError as e:
        print(f"FAIL {path}: invalid JSON: {e}")
        return False

    if not isinstance(doc, dict):
        return fail(path, None, "top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, None, "missing traceEvents array")

    ok = True
    last_ts = None
    counts = {}
    for i, event in enumerate(events):
        if not check_event(path, i, event):
            ok = False
            continue
        counts[event.get("name", "?")] = counts.get(event.get("name", "?"), 0) + 1
        ts = event.get("ts")
        if event.get("ph") == "M" or ts is None:
            continue
        # The sink appends in simulation order: non-decreasing ts.
        if last_ts is not None and ts < last_ts:
            ok = fail(path, i, f"ts went backwards ({ts} < {last_ts})")
        last_ts = ts

    dropped = doc.get("otherData", {})
    if not isinstance(dropped, dict):
        return fail(path, None, "otherData must be an object")
    dropped = dropped.get("dropped_events", 0)
    if not isinstance(dropped, int) or isinstance(dropped, bool) or dropped < 0:
        ok = fail(path, None,
                  f"dropped_events must be a non-negative integer, got {dropped!r}")

    if ok:
        summary = ", ".join(f"{name}={count}"
                            for name, count in sorted(counts.items()))
        print(f"OK   {path}: {len(events)} events"
              f" (dropped={dropped}) [{summary}]")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1])
        return 2
    ok = True
    for path in argv[1:]:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
