#!/usr/bin/env python3
"""Determinism linter: ban nondeterminism sources in result-affecting code.

A fast tokenizing checker over the C++ tree that enforces the repo's
determinism contract statically (DESIGN.md §13).  Rules live in
``scripts/determinism_rules.toml``; each bans one nondeterminism source
(hashed-container iteration, wall clocks, unseeded randomness, pointer
ordering, ...).  Comments and string literals are stripped before
matching, so prose about ``rand()`` never trips the gate.

Escapes are inline comments on — or in the comment block immediately
above — the flagged line::

    // lint: allow(<rule-id>): <justification>

The justification is mandatory; a bare ``allow`` is itself reported
(rule ``unjustified-allow``).

Usage:
    scripts/lint_determinism.py                    # lint configured roots
    scripts/lint_determinism.py src/core bench     # explicit paths
    scripts/lint_determinism.py --json out.json    # machine-readable report
    scripts/lint_determinism.py --explain RULE     # why a rule exists

Exit codes: 0 clean, 1 findings, 2 usage/config error.
"""

import argparse
import json
import os
import re
import sys

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    tomllib = None

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_CONFIG = os.path.join(REPO_ROOT, "scripts", "determinism_rules.toml")

ALLOW_RE = re.compile(
    r"lint:\s*allow\(([A-Za-z0-9_-]+)\)\s*(?::\s*(.*?))?\s*(?:\*/.*)?$")
COMMENT_ONLY_RE = re.compile(r"^\s*(?://|\*|/\*)")

# Matches an unordered container declaration and captures the variable
# name (one level of nested template args — enough for this tree; the
# fixtures under tests/lint_fixtures/ pin the supported shapes).
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:multi)?(?:map|set)\s*"
    r"<(?:[^<>]|<[^<>]*>)*>\s*&?\s+(\w+)\s*[;({=,)]")
UNORDERED_INLINE_ITER_RE = re.compile(
    r"for\s*\([^)]*:\s*[^)]*unordered_(?:multi)?(?:map|set)")


def fail(message):
    print(f"lint_determinism: error: {message}", file=sys.stderr)
    sys.exit(2)


def strip_comments_and_strings(text):
    """Blanks comments, string and char literals, preserving layout.

    Keeps every newline (so line numbers survive) and replaces all other
    masked characters with spaces.  Handles //, /* */, "..." (with
    escapes), '...' and raw strings R"delim(...)delim".
    """
    out = []
    i, n = 0, len(text)
    CODE, LINE, BLOCK, STR, CHR, RAW = range(6)
    state = CODE
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw string?  Look back for R / u8R / LR / UR / uR.
                j = len(out) - 1
                prefix = ""
                while j >= 0 and out[j].strip() and out[j][-1].isalnum():
                    prefix = out[j][-1] + prefix
                    j -= 1
                    if len(prefix) > 3:
                        break
                if prefix.endswith("R"):
                    m = re.match(r'"([^()\\ \t\n]*)\(', text[i:])
                    if m:
                        raw_terminator = ")" + m.group(1) + '"'
                        state = RAW
                        out.append('"')
                        i += 1
                        continue
                state = STR
                out.append('"')
                i += 1
            elif c == "'":
                state = CHR
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE:
            if c == "\n":
                state = CODE
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = CODE
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == STR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = CODE
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == CHR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = CODE
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # RAW
            if text.startswith(raw_terminator, i):
                state = CODE
                out.append(" " * (len(raw_terminator) - 1) + '"')
                i += len(raw_terminator)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def load_config(path):
    if tomllib is None:
        fail("python >= 3.11 (tomllib) required")
    try:
        with open(path, "rb") as f:
            doc = tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as err:
        fail(f"cannot load config {path}: {err}")
    rules = {}
    for rule_id, spec in doc.get("rules", {}).items():
        compiled = []
        for pat in spec.get("patterns", []):
            try:
                compiled.append(re.compile(pat))
            except re.error as err:
                fail(f"rule {rule_id}: bad pattern {pat!r}: {err}")
        rules[rule_id] = {
            "patterns": compiled,
            "builtin": spec.get("builtin"),
            "summary": spec.get("summary", ""),
            "explain": spec.get("explain", "").strip(),
            "allow_paths": tuple(spec.get("allow_paths", [])),
        }
    linter = doc.get("linter", {})
    return {
        "roots": linter.get("roots", ["src"]),
        "extensions": tuple(linter.get("extensions", [".h", ".cc"])),
        "exclude": tuple(linter.get("exclude", [])),
        "rules": rules,
    }


def collect_files(paths, config):
    files = []
    for path in paths:
        abs_path = path if os.path.isabs(path) else os.path.join(REPO_ROOT, path)
        if os.path.isfile(abs_path):
            files.append(abs_path)
            continue
        if not os.path.isdir(abs_path):
            fail(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(abs_path):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(config["extensions"]):
                    files.append(os.path.join(dirpath, name))
    rel = [os.path.relpath(f, REPO_ROOT) for f in files]
    return [r for r in rel
            if not any(r.startswith(e) for e in config["exclude"])]


def find_allow(raw_lines, line_index):
    """Allow directive for a finding on raw_lines[line_index] (0-based).

    Looks at the flagged line itself, then upward through the contiguous
    comment block above it.  Returns (rule_id, justification) or None.
    """
    candidates = [line_index]
    j = line_index - 1
    while j >= 0 and COMMENT_ONLY_RE.match(raw_lines[j]):
        candidates.append(j)
        j -= 1
    for idx in candidates:
        m = ALLOW_RE.search(raw_lines[idx])
        if m:
            justification = (m.group(2) or "").strip()
            # A justification may spill onto following comment lines
            # (still above the code line); count them in.
            if justification:
                k = idx + 1
                while k < line_index and COMMENT_ONLY_RE.match(raw_lines[k]):
                    justification += " " + raw_lines[k].lstrip("/ *").strip()
                    k += 1
            return m.group(1), justification
    return None


def builtin_unordered_iteration(code_lines):
    """Yields (line_index, snippet) for unordered-container iteration."""
    declared = set()
    for line in code_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            declared.add(m.group(1))
    if declared:
        names = "|".join(re.escape(v) for v in sorted(declared))
        range_for = re.compile(
            r"for\s*\(\s*[^;)]*?:\s*[&*]?\s*(?:" + names + r")\s*\)")
        begin_walk = re.compile(
            r"\b(?:" + names + r")\s*\.\s*c?r?(?:begin|end)\s*\(\s*\)")
    for i, line in enumerate(code_lines):
        if UNORDERED_INLINE_ITER_RE.search(line):
            yield i, line.strip()
            continue
        if declared and (range_for.search(line) or begin_walk.search(line)):
            yield i, line.strip()


def lint_file(rel_path, config):
    abs_path = os.path.join(REPO_ROOT, rel_path)
    try:
        with open(abs_path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as err:
        fail(f"cannot read {rel_path}: {err}")
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    # splitlines() on the stripped text can drop a trailing line; pad.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")

    hits = []  # (line_index, rule_id, snippet)
    for rule_id, rule in config["rules"].items():
        if any(rel_path.startswith(p) for p in rule["allow_paths"]):
            continue
        if rule["builtin"] == "unordered-iteration":
            for i, snippet in builtin_unordered_iteration(code_lines):
                hits.append((i, rule_id, snippet))
        for pattern in rule["patterns"]:
            for i, line in enumerate(code_lines):
                if pattern.search(line):
                    hits.append((i, rule_id, raw_lines[i].strip()))

    findings, allowed = [], []
    seen = set()
    for i, rule_id, snippet in sorted(hits):
        if (i, rule_id) in seen:  # several patterns, one report
            continue
        seen.add((i, rule_id))
        allow = find_allow(raw_lines, i)
        record = {"file": rel_path, "line": i + 1, "rule": rule_id,
                  "severity": "error", "snippet": snippet[:200]}
        if allow is not None and allow[0] == rule_id:
            if allow[1]:
                record["justification"] = allow[1]
                allowed.append(record)
            else:
                record["rule"] = "unjustified-allow"
                record["severity"] = "error"
                record["snippet"] = (
                    f"allow({rule_id}) without a justification string")
                findings.append(record)
        else:
            findings.append(record)
    return findings, allowed


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint "
                             "(default: roots from the rules config)")
    parser.add_argument("--config", default=DEFAULT_CONFIG,
                        help="rules file (default: scripts/determinism_rules.toml)")
    parser.add_argument("--json", metavar="OUT", dest="json_out",
                        help="also write a machine-readable report")
    parser.add_argument("--explain", metavar="RULE",
                        help="print a rule's rationale and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-finding output (exit code only)")
    args = parser.parse_args()

    config = load_config(args.config)

    if args.explain:
        rule = config["rules"].get(args.explain)
        if rule is None:
            known = ", ".join(sorted(config["rules"]))
            fail(f"unknown rule {args.explain!r} (known: {known})")
        print(f"{args.explain}: {rule['summary']}\n")
        print(rule["explain"] or "(no extended rationale recorded)")
        return 0

    paths = args.paths or config["roots"]
    files = collect_files(paths, config)
    if not files:
        fail(f"no {'/'.join(config['extensions'])} files under {paths}")

    all_findings, all_allowed = [], []
    for rel_path in files:
        findings, allowed = lint_file(rel_path, config)
        all_findings.extend(findings)
        all_allowed.extend(allowed)

    if args.json_out:
        report = {
            "schema": 1,
            "config": os.path.relpath(args.config, REPO_ROOT),
            "scanned_files": len(files),
            "findings": all_findings,
            "allowed": all_allowed,
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if not args.quiet:
        for f in all_findings:
            print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['snippet']}")
            summary = config["rules"].get(f["rule"], {}).get("summary")
            if summary:
                print(f"    {summary}")
        for a in all_allowed:
            print(f"{a['file']}:{a['line']}: allowed [{a['rule']}]: "
                  f"{a['justification']}")
        verdict = "FAIL" if all_findings else "ok"
        print(f"lint_determinism: {len(files)} files, "
              f"{len(all_findings)} findings, "
              f"{len(all_allowed)} justified escapes — {verdict}")
        if all_findings:
            print("explain a rule with: "
                  "scripts/lint_determinism.py --explain <rule>")
    return 1 if all_findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into `head` or similar; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
