#!/usr/bin/env python3
"""Gate benchmark wall times against a checked-in baseline.

Consumes the BENCH_<name>.json documents emitted by the bench binaries'
``--json`` flag (see bench/report.h) and compares each entry's wall_ns
against ``bench/baseline.json``.  An entry more than ``--threshold``
(default 25%) slower than its baseline fails the gate; faster entries
and entries with no baseline are reported but never fail.

Usage:
    scripts/bench_compare.py [options] BENCH_*.json
    scripts/bench_compare.py --update BENCH_*.json   # rewrite baseline
    scripts/bench_compare.py --memory-gate bench/memory_budget.json BENCH_*.json

Baseline format (flat, diff-friendly):
    {
      "schema": 1,
      "note": "...",
      "entries": { "<bench>/<entry name>": wall_ns, ... }
    }

Memory gate: ``--memory-gate BUDGET_JSON`` additionally checks each
entry's ``peak_rss_bytes`` (attached by bench/report.h on Linux)
against a hard per-entry budget:
    {
      "schema": 1,
      "note": "...",
      "budgets": { "<bench>/<entry name>": max_peak_rss_bytes, ... }
    }
Unlike the wall-time gate, memory budgets are *hard*: RSS is stable
across runner classes, so an over-budget entry exits 2 (the malformed /
unconditional-failure exit), not 1.  A budgeted entry whose report
carries no peak_rss_bytes is tolerated with a warning (non-Linux
runners cannot measure it).

``--merge-out PATH`` writes the merged view of all input reports (best
wall time and worst peak RSS per entry) as one JSON document — the
bench-trend artifact CI uploads for cross-run history.

Wall clocks vary across machines, so the baseline is calibrated for the
CI runner class; regenerate it (--update on a CI artifact set) whenever
runners or deliberate perf trade-offs change.  The threshold is loose on
purpose: this gate exists to catch order-of-magnitude regressions (an
accidentally serialized kernel, a quadratic slip), not 5% noise.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baseline.json")


class ReportError(Exception):
    """A report (or the baseline) is unreadable, malformed, or empty.

    Always fatal: a gate that shrugs at a truncated or empty report
    would silently pass, which is exactly the failure mode this gate
    exists to prevent.
    """


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as err:
        raise ReportError(f"{path}: cannot read report: {err}")
    except json.JSONDecodeError as err:
        raise ReportError(f"{path}: malformed JSON: {err}")
    if not isinstance(doc, dict):
        raise ReportError(f"{path}: report root must be an object, "
                          f"got {type(doc).__name__}")
    for key in ("bench", "entries"):
        if key not in doc:
            raise ReportError(f"{path}: missing '{key}' field")
    entries = doc["entries"]
    if not isinstance(entries, list) or not entries:
        raise ReportError(f"{path}: 'entries' must be a non-empty list "
                          "(an empty report would pass the gate vacuously)")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ReportError(f"{path}: entries[{i}] has no 'name'")
        wall_ns = entry.get("wall_ns")
        if not isinstance(wall_ns, (int, float)) or isinstance(wall_ns, bool) \
                or wall_ns < 0:
            raise ReportError(
                f"{path}: entries[{i}] ('{entry['name']}') has bad "
                f"wall_ns: {wall_ns!r}")
        rss = entry.get("peak_rss_bytes")
        if rss is not None and (not isinstance(rss, (int, float))
                                or isinstance(rss, bool) or rss < 0):
            raise ReportError(
                f"{path}: entries[{i}] ('{entry['name']}') has bad "
                f"peak_rss_bytes: {rss!r}")
    return doc


def flatten(reports):
    """{'<bench>/<entry name>': wall_ns} over all report documents.

    A key seen in several reports keeps its *minimum* wall time: CI runs
    each bench more than once and gates on the best run, which filters
    out scheduler-jitter spikes without hiding real slowdowns (a true
    regression is slow on every run).
    """
    flat = {}
    for doc in reports:
        for entry in doc["entries"]:
            key = f"{doc['bench']}/{entry['name']}"
            wall_ns = int(entry["wall_ns"])
            flat[key] = min(flat[key], wall_ns) if key in flat else wall_ns
    return flat


def flatten_memory(reports):
    """{'<bench>/<entry name>': peak_rss_bytes} over all reports.

    A key seen several times keeps its *maximum*: unlike wall time,
    memory is gated on the worst observed run (RSS has no
    scheduler-jitter spikes to filter, and a budget must hold always).
    Entries without peak_rss_bytes are absent from the result.
    """
    flat = {}
    for doc in reports:
        for entry in doc["entries"]:
            rss = entry.get("peak_rss_bytes")
            if rss is None:
                continue
            key = f"{doc['bench']}/{entry['name']}"
            rss = int(rss)
            flat[key] = max(flat[key], rss) if key in flat else rss
    return flat


def check_memory_gate(budget_path, current_mem, current_wall):
    """Returns a list of over-budget report lines (empty = pass).

    Budgeted entries that were not measured, or were measured without an
    RSS value, are warned about but never fail: the former is a stale
    budget, the latter a platform without /proc (bench/report.h omits
    the field there).
    """
    try:
        with open(budget_path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as err:
        raise ReportError(f"{budget_path}: cannot read memory budget: {err}")
    except json.JSONDecodeError as err:
        raise ReportError(f"{budget_path}: malformed budget JSON: {err}")
    if not isinstance(doc, dict) or not isinstance(doc.get("budgets"), dict):
        raise ReportError(f"{budget_path}: budget must be an object with a "
                          "'budgets' mapping")
    budgets = doc["budgets"]
    for key, limit in budgets.items():
        if not isinstance(limit, (int, float)) or isinstance(limit, bool) \
                or limit <= 0:
            raise ReportError(f"{budget_path}: bad budget for '{key}': "
                              f"{limit!r}")

    violations, unmeasured, unreported = [], [], []
    for key, limit in sorted(budgets.items()):
        if key not in current_wall:
            unmeasured.append(key)
            continue
        rss = current_mem.get(key)
        if rss is None:
            unreported.append(key)
            continue
        if rss > limit:
            violations.append(
                f"{key}: peak RSS {rss / 1e6:.1f}MB exceeds budget "
                f"{limit / 1e6:.1f}MB ({rss / limit:.2f}x)")

    print(f"\nmemory gate: {len(budgets)} budgeted entries "
          f"({budget_path})")
    if unmeasured:
        print(f"WARNING: {len(unmeasured)} budgeted entries were not "
              "measured this run (stale budget?):", file=sys.stderr)
        for key in unmeasured:
            print(f"  {key}", file=sys.stderr)
    if unreported:
        print(f"WARNING: {len(unreported)} budgeted entries carry no "
              "peak_rss_bytes (platform cannot measure RSS); NOT gated:",
              file=sys.stderr)
        for key in unreported:
            print(f"  {key}", file=sys.stderr)
    return violations


def write_merged(path, reports, current_wall, current_mem):
    """Writes the merged bench-trend document consumed by CI history."""
    git_sha = next((doc.get("git_sha") for doc in reports
                    if doc.get("git_sha")), "unknown")
    entries = {}
    for key in sorted(current_wall):
        entry = {"wall_ns": current_wall[key]}
        if key in current_mem:
            entry["peak_rss_bytes"] = current_mem[key]
        entries[key] = entry
    doc = {"schema": 1, "git_sha": git_sha, "entries": entries}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"merged {len(entries)} entries -> {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs="+", metavar="BENCH_JSON",
                        help="BENCH_*.json files produced with --json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file (default: bench/baseline.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25 = 25%%)")
    parser.add_argument("--min-ns", type=int, default=1_000_000,
                        help="ignore entries whose baseline is below this "
                             "(sub-millisecond timings are noise; default 1ms)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these reports "
                             "instead of comparing")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="fail the gate when a measured entry has no "
                             "baseline (default: warn only)")
    parser.add_argument("--memory-gate", metavar="BUDGET_JSON",
                        help="hard peak-RSS budget file; an over-budget "
                             "entry exits 2")
    parser.add_argument("--merge-out", metavar="PATH",
                        help="write the merged bench-trend JSON (best wall "
                             "time, worst peak RSS per entry)")
    args = parser.parse_args()

    reports = [load_report(p) for p in args.reports]
    current = flatten(reports)
    if not current:
        raise ReportError("no bench entries found across "
                          f"{len(args.reports)} report file(s)")
    current_mem = flatten_memory(reports)

    if args.merge_out:
        write_merged(args.merge_out, reports, current, current_mem)

    if args.update:
        doc = {
            "schema": 1,
            "note": ("wall_ns per bench entry; regenerate with "
                     "scripts/bench_compare.py --update BENCH_*.json"),
            "entries": dict(sorted(current.items())),
        }
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {len(current)} entries -> {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline_doc = json.load(f)
    except OSError as err:
        raise ReportError(f"{args.baseline}: cannot read baseline: {err}")
    except json.JSONDecodeError as err:
        raise ReportError(f"{args.baseline}: malformed baseline JSON: {err}")
    if not isinstance(baseline_doc, dict) or \
            not isinstance(baseline_doc.get("entries"), dict):
        raise ReportError(f"{args.baseline}: baseline must be an object "
                          "with an 'entries' mapping")
    baseline = baseline_doc["entries"]

    regressions, improvements, skipped_fast, missing = [], [], [], []
    for key, wall_ns in sorted(current.items()):
        base_ns = baseline.get(key)
        if base_ns is None:
            missing.append(key)
            continue
        if base_ns < args.min_ns:
            skipped_fast.append(key)
            continue
        ratio = wall_ns / base_ns
        line = f"{key}: {base_ns / 1e6:.2f}ms -> {wall_ns / 1e6:.2f}ms ({ratio:.2f}x)"
        if ratio > 1.0 + args.threshold:
            regressions.append(line)
        elif ratio < 1.0 - args.threshold:
            improvements.append(line)

    stale = sorted(set(baseline) - set(current))

    print(f"compared {len(current)} entries against {args.baseline} "
          f"(threshold +{args.threshold:.0%}, min baseline {args.min_ns / 1e6:.0f}ms)")
    if improvements:
        print(f"\nimprovements ({len(improvements)}):")
        for line in improvements:
            print(f"  {line}")
    if missing:
        # Loud on purpose: an entry with no baseline is ungated, which
        # usually means a new bench landed without `--update`.
        print(f"\nWARNING: {len(missing)} measured entries have no "
              f"baseline and are NOT gated:", file=sys.stderr)
        for key in missing:
            print(f"  {key}", file=sys.stderr)
        print("add them with: scripts/bench_compare.py --update "
              "BENCH_*.json", file=sys.stderr)
    if skipped_fast:
        print(f"\nskipped (baseline under min-ns): {len(skipped_fast)}")
    if stale:
        print(f"\nbaseline entries not measured this run: {len(stale)}")
    memory_violations = []
    if args.memory_gate:
        memory_violations = check_memory_gate(args.memory_gate, current_mem,
                                              current)

    if regressions:
        print(f"\nREGRESSIONS ({len(regressions)}):")
        for line in regressions:
            print(f"  {line}")
    if memory_violations:
        print(f"\nMEMORY BUDGET VIOLATIONS ({len(memory_violations)}):")
        for line in memory_violations:
            print(f"  {line}")
        # Hard failure: memory budgets hold on every runner class, so a
        # violation is never jitter — use the unconditional exit.
        print("\nbench gate: FAIL (memory budget)")
        return 2
    if regressions:
        print("\nbench gate: FAIL")
        return 1
    if missing and args.fail_on_missing:
        print("\nbench gate: FAIL (missing baseline entries)")
        return 1
    print("\nbench gate: ok")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ReportError as err:
        print(f"bench gate: ERROR: {err}", file=sys.stderr)
        sys.exit(2)
