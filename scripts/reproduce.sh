#!/usr/bin/env bash
# Reproduces everything: build, full test suite, and every experiment
# table (E1-E18) into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build 2>&1 | tee results/tests.txt

for bench in build/bench/*; do
  name=$(basename "$bench")
  echo "== $name =="
  "$bench" | tee "results/$name.txt"
done

echo
echo "All experiment tables written to results/ — compare against EXPERIMENTS.md"
