#!/usr/bin/env bash
# Correctness gate: clang-tidy over src/ (when available) followed by
# the full test suite under AddressSanitizer + UndefinedBehaviorSanitizer.
# Exits non-zero on any tidy diagnostic-as-error, build failure, test
# failure, or sanitizer report (-fno-sanitize-recover=all turns every
# report into a test failure).
#
# Usage:  scripts/check.sh [--tidy-only | --sanitize-only]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
run_tidy=1
run_sanitize=1
case "${1:-}" in
  --tidy-only) run_sanitize=0 ;;
  --sanitize-only) run_tidy=0 ;;
  "") ;;
  *)
    echo "usage: scripts/check.sh [--tidy-only | --sanitize-only]" >&2
    exit 2
    ;;
esac

# --- Stage 1: clang-tidy over src/ -----------------------------------
if [[ "${run_tidy}" -eq 1 ]]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    echo "== clang-tidy gate =="
    cmake --preset tidy > /dev/null
    mapfile -t sources < <(find src -name '*.cc' | sort)
    if command -v run-clang-tidy > /dev/null 2>&1; then
      run-clang-tidy -quiet -p build-tidy "${sources[@]}"
    else
      clang-tidy -quiet -p build-tidy "${sources[@]}"
    fi
    echo "clang-tidy: clean"
  else
    echo "clang-tidy not found; skipping static-analysis stage." >&2
  fi
fi

# --- Stage 2: ASan + UBSan test suite --------------------------------
if [[ "${run_sanitize}" -eq 1 ]]; then
  echo "== sanitized test suite (address;undefined) =="
  cmake --preset asan-ubsan > /dev/null
  cmake --build --preset asan-ubsan -j "${jobs}"
  ctest --test-dir build-asan-ubsan -j "${jobs}" --output-on-failure
fi

echo "check.sh: all stages passed"
