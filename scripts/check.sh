#!/usr/bin/env bash
# Correctness gate, four stages:
#   1. determinism linter (scripts/lint_determinism.py) over src/
#   2. header self-containment: every src/**/*.h compiles standalone
#   3. clang-tidy over src/ (when clang-tidy is available)
#   4. full test suite under AddressSanitizer + UBSan
# Exits non-zero on any linter finding, non-standalone header, tidy
# diagnostic-as-error, build failure, test failure, or sanitizer report
# (-fno-sanitize-recover=all turns every report into a test failure).
#
# Usage:  scripts/check.sh [--lint-only | --headers-only | --tidy-only |
#                           --sanitize-only]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
run_lint=1
run_headers=1
run_tidy=1
run_sanitize=1
case "${1:-}" in
  --lint-only) run_headers=0; run_tidy=0; run_sanitize=0 ;;
  --headers-only) run_lint=0; run_tidy=0; run_sanitize=0 ;;
  --tidy-only) run_lint=0; run_headers=0; run_sanitize=0 ;;
  --sanitize-only) run_lint=0; run_headers=0; run_tidy=0 ;;
  "") ;;
  *)
    echo "usage: scripts/check.sh [--lint-only | --headers-only |" \
         "--tidy-only | --sanitize-only]" >&2
    exit 2
    ;;
esac

# --- Stage 1: determinism linter -------------------------------------
if [[ "${run_lint}" -eq 1 ]]; then
  echo "== determinism linter =="
  python3 scripts/lint_determinism.py
fi

# --- Stage 2: header self-containment --------------------------------
# Each public header must compile on its own (all includes present, no
# hidden ordering dependency on its includers).  A header that only
# builds after "the right" sibling keeps working locally and then breaks
# the first unrelated file that includes it.
if [[ "${run_headers}" -eq 1 ]]; then
  echo "== header self-containment =="
  cxx="${CXX:-c++}"
  failed=0
  while IFS= read -r header; do
    # Compile a one-line TU that includes the header (rather than the
    # header itself) so `#pragma once` does not warn about being in a
    # main file.
    if ! echo "#include \"${header#src/}\"" | \
         "${cxx}" -std=c++20 -fsyntax-only -Isrc -x c++ -; then
      echo "NOT self-contained: ${header}" >&2
      failed=1
    fi
  done < <(find src -name '*.h' | sort)
  if [[ "${failed}" -ne 0 ]]; then
    echo "header self-containment: FAIL" >&2
    exit 1
  fi
  echo "header self-containment: clean"
fi

# --- Stage 3: clang-tidy over src/ -----------------------------------
if [[ "${run_tidy}" -eq 1 ]]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    echo "== clang-tidy gate =="
    cmake --preset tidy > /dev/null
    mapfile -t sources < <(find src -name '*.cc' | sort)
    if command -v run-clang-tidy > /dev/null 2>&1; then
      run-clang-tidy -quiet -p build-tidy "${sources[@]}"
    else
      clang-tidy -quiet -p build-tidy "${sources[@]}"
    fi
    echo "clang-tidy: clean"
  else
    echo "clang-tidy not found; skipping static-analysis stage." >&2
  fi
fi

# --- Stage 4: ASan + UBSan test suite --------------------------------
if [[ "${run_sanitize}" -eq 1 ]]; then
  echo "== sanitized test suite (address;undefined) =="
  cmake --preset asan-ubsan > /dev/null
  cmake --build --preset asan-ubsan -j "${jobs}"
  ctest --test-dir build-asan-ubsan -j "${jobs}" --output-on-failure
fi

echo "check.sh: all stages passed"
