// E6 — "message cost" table.
//
// Claim: deterministic flooding over a (near-)minimal k-connected LHG
// delivers to every live node at a message cost of ~2m ≈ k·n, far below
// what push gossip needs for comparable reliability (fanout·rounds·n),
// while spanning-tree multicast is cheapest (n−1) but loses entire
// subtrees on a single crash.
//
// Expected shape, with f = k−1 crashes: flood delivery 1.00 at ~k·n
// messages; gossip needs several times more messages to approach 1.00
// and still misses nodes occasionally; tree delivery visibly < 1.00.

#include <algorithm>
#include <iostream>

#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;
  using namespace lhg::flooding;

  constexpr int kTrials = 50;
  const std::int32_t k = 4;
  std::cout << "E6: message cost vs delivery, f = k-1 = 3 random crashes, "
            << kTrials << " trials per row\n";
  bench::Table table({"n", "protocol", "mean_msgs", "mean_deliv", "min_deliv",
                      "complete%"},
                     13);
  table.print_header();

  for (const core::NodeId n : {128, 512, 2048}) {
    const auto size = static_cast<core::NodeId>(
        regular_exists(n, k) ? n
                             : n + (2 * (k - 1) - (n - 2 * k) % (2 * (k - 1))));
    const auto g = build(size, k);

    struct Run {
      const char* name;
      double msgs = 0;
      double deliv = 0;
      double min_deliv = 1.0;
      int complete = 0;
    };
    Run flood_run{"flood"};
    Run gossip_run{"gossip_f4"};
    Run gossip_big{"gossip_f8"};
    Run gossip_pp{"pushpull_f2"};
    Run tree_run{"tree"};

    core::Rng rng(static_cast<std::uint64_t>(n));
    for (int t = 0; t < kTrials; ++t) {
      const auto plan = random_crashes(g, k - 1, 0, rng);
      const auto seed = static_cast<std::uint64_t>(t) * 977 + 7;

      auto account = [&](Run& run, const DisseminationResult& result) {
        run.msgs += static_cast<double>(result.messages_sent);
        run.deliv += result.delivery_ratio();
        run.min_deliv = std::min(run.min_deliv, result.delivery_ratio());
        run.complete += result.all_alive_delivered() ? 1 : 0;
      };
      account(flood_run, flood(g, {.source = 0, .seed = seed}, plan));
      account(gossip_run,
              gossip(size, {.source = 0, .fanout = 4, .seed = seed}, plan));
      account(gossip_big,
              gossip(size, {.source = 0, .fanout = 8, .seed = seed}, plan));
      account(gossip_pp,
              gossip(size, {.source = 0, .fanout = 2,
                            .mode = GossipMode::kPushPull, .seed = seed},
                     plan));
      account(tree_run, spanning_tree_multicast(g, {.source = 0, .seed = seed},
                                                plan));
    }
    for (const Run& run :
         {flood_run, gossip_run, gossip_big, gossip_pp, tree_run}) {
      table.print_row(size, run.name, run.msgs / kTrials, run.deliv / kTrials,
                      run.min_deliv, 100.0 * run.complete / kTrials);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: flood complete% == 100 at ~k*n msgs; gossip "
               "needs more msgs for less certainty; tree is cheap but "
               "unreliable\n";
  return 0;
}
