// E6 — "message cost" table.
//
// Claim: deterministic flooding over a (near-)minimal k-connected LHG
// delivers to every live node at a message cost of ~2m ≈ k·n, far below
// what push gossip needs for comparable reliability (fanout·rounds·n),
// while spanning-tree multicast is cheapest (n−1) but loses entire
// subtrees on a single crash.
//
// Expected shape, with f = k−1 crashes: flood delivery 1.00 at ~k·n
// messages; gossip needs several times more messages to approach 1.00
// and still misses nodes occasionally; tree delivery visibly < 1.00.
//
// Trials are independent (one crash plan + protocol seed each) and fan
// across core::parallel via flooding::TrialRunner; LHG_THREADS controls
// the lane count.

#include <algorithm>
#include <iostream>
#include <string>

#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "flooding/trial_runner.h"
#include "lhg/lhg.h"
#include "report.h"
#include "table.h"

namespace {

struct Agg {
  double msgs = 0;
  double deliv = 0;
  double min_deliv = 1.0;
  int complete = 0;

  static Agg merge(Agg a, const Agg& b) {
    a.msgs += b.msgs;
    a.deliv += b.deliv;
    a.min_deliv = std::min(a.min_deliv, b.min_deliv);
    a.complete += b.complete;
    return a;
  }
};

Agg account(const lhg::flooding::DisseminationResult& result) {
  Agg one;
  one.msgs = static_cast<double>(result.messages_sent);
  one.deliv = result.delivery_ratio();
  one.min_deliv = result.delivery_ratio();
  one.complete = result.all_alive_delivered() ? 1 : 0;
  return one;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using namespace lhg::flooding;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_messages");

  const int trials = opts.small ? 20 : 50;
  const std::int32_t k = 4;
  std::cout << "E6: message cost vs delivery, f = k-1 = 3 random crashes, "
            << trials << " trials per row  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"n", "protocol", "mean_msgs", "mean_deliv", "min_deliv",
                      "complete%"},
                     13);
  table.print_header();

  for (const core::NodeId n : {128, 512, 2048}) {
    const auto size = static_cast<core::NodeId>(
        regular_exists(n, k) ? n
                             : n + (2 * (k - 1) - (n - 2 * k) % (2 * (k - 1))));
    const auto g = build(size, k);
    const TrialRunner runner{.seed = static_cast<std::uint64_t>(n) * 41 + 11};

    struct Proto {
      const char* name;
      Agg agg;
      std::int64_t wall_ns = 0;
    };
    Proto protos[] = {{"flood", {}}, {"gossip_f4", {}}, {"gossip_f8", {}},
                      {"pushpull_f2", {}}, {"tree", {}}};

    const auto sweep = [&](Proto& proto, auto&& one_trial) {
      const bench::WallTimer timer;
      proto.agg = runner.run<Agg>(
          trials, Agg{},
          [&](std::int64_t, core::Rng& rng) {
            const auto plan = random_crashes(g, k - 1, 0, rng, /*time=*/0.0);
            return account(one_trial(rng(), plan));
          },
          Agg::merge);
      proto.wall_ns = timer.elapsed_ns();
      report.add(std::string("messages/proto=") + proto.name +
                     "/n=" + std::to_string(size),
                 {{"proto", proto.name},
                  {"n", size},
                  {"trials", trials},
                  {"complete", proto.agg.complete}},
                 proto.wall_ns);
    };

    sweep(protos[0], [&](std::uint64_t seed, const FailurePlan& plan) {
      return flood(g, {.source = 0, .seed = seed}, plan);
    });
    sweep(protos[1], [&](std::uint64_t seed, const FailurePlan& plan) {
      return gossip(size, {.source = 0, .fanout = 4, .seed = seed}, plan);
    });
    sweep(protos[2], [&](std::uint64_t seed, const FailurePlan& plan) {
      return gossip(size, {.source = 0, .fanout = 8, .seed = seed}, plan);
    });
    sweep(protos[3], [&](std::uint64_t seed, const FailurePlan& plan) {
      return gossip(size, {.source = 0, .fanout = 2,
                           .mode = GossipMode::kPushPull, .seed = seed},
                    plan);
    });
    sweep(protos[4], [&](std::uint64_t seed, const FailurePlan& plan) {
      return spanning_tree_multicast(g, {.source = 0, .seed = seed}, plan);
    });

    for (const Proto& proto : protos) {
      table.print_row(size, proto.name, proto.agg.msgs / trials,
                      proto.agg.deliv / trials, proto.agg.min_deliv,
                      100.0 * proto.agg.complete / trials);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: flood complete% == 100 at ~k*n msgs; gossip "
               "needs more msgs for less certainty; tree is cheap but "
               "unreliable\n";
  return opts.finish(report);
}
