// E8 — "construction cost" table (google-benchmark).
//
// Claim: building an LHG is O(n·k) time and memory — cheap enough to
// recompute whenever membership changes — and verifying k-connectivity
// (the expensive part of admission checking) is O(k·m) per max-flow
// probe.
//
// Expected shape: Build* timings scale ~linearly in n at fixed k;
// circulant Harary construction is the same order; the verifier scales
// ~n·k·m and dominates.

#include <benchmark/benchmark.h>

#include "core/connectivity.h"
#include "core/diameter.h"
#include "flooding/protocols.h"
#include "harary/harary.h"
#include "lhg/lhg.h"

namespace {

void BM_BuildKTree(benchmark::State& state) {
  const auto n = static_cast<lhg::core::NodeId>(state.range(0));
  const auto k = static_cast<std::int32_t>(state.range(1));
  for (auto _ : state) {
    auto g = lhg::build(n, k, lhg::Constraint::kKTree);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildKTree)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}, {3, 8}})
    ->Complexity(benchmark::oN);

void BM_BuildKDiamond(benchmark::State& state) {
  const auto n = static_cast<lhg::core::NodeId>(state.range(0));
  for (auto _ : state) {
    auto g = lhg::build(n, 4, lhg::Constraint::kKDiamond);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildKDiamond)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Complexity(benchmark::oN);

void BM_BuildHarary(benchmark::State& state) {
  const auto n = static_cast<lhg::core::NodeId>(state.range(0));
  for (auto _ : state) {
    auto g = lhg::harary::circulant(n, 4);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildHarary)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Complexity(benchmark::oN);

void BM_Diameter(benchmark::State& state) {
  const auto n = static_cast<lhg::core::NodeId>(state.range(0));
  const auto g = lhg::build(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lhg::core::diameter(g));
  }
}
BENCHMARK(BM_Diameter)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_VerifyKConnectivity(benchmark::State& state) {
  const auto n = static_cast<lhg::core::NodeId>(state.range(0));
  const std::int32_t k = 4;
  const auto g = lhg::build(n, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lhg::core::is_k_vertex_connected(g, k));
  }
}
BENCHMARK(BM_VerifyKConnectivity)->Arg(64)->Arg(256)->Arg(1024);

void BM_FloodLatencySim(benchmark::State& state) {
  // Cost of one full event-driven flood (the inner loop of E4/E5).
  const auto n = static_cast<lhg::core::NodeId>(state.range(0));
  const auto g = lhg::build(n, 4);
  for (auto _ : state) {
    auto result = lhg::flooding::flood(g, {.source = 0});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FloodLatencySim)->Arg(1 << 8)->Arg(1 << 10)->Arg(1 << 12);

}  // namespace

BENCHMARK_MAIN();
