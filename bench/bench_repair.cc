// E21 — self-healing repair: time-to-reconnect and message cost.
//
// After f = k-1 crashes the paper's flooding guarantee is spent: the
// residual overlay may be exactly 1-connected and the next crash can
// split it.  The repair pipeline (flooding/repair.h) detects the
// crashes by heartbeat, floods view changes on the reliable layer, and
// rewires the survivors toward the LHG over the new membership.  This
// bench measures what that costs: detection and reconnect latency, the
// per-phase message bill, and whether the verifier certifies the healed
// overlay k-connected — on clean channels and under adversarial loss.
//
// Expected shape: detection ~ crash time + heartbeat timeout;
// reconnect a few underlay round-trips later; repaired% and kconn%
// pinned at 100 even with 10% loss on both overlay and underlay
// (retries absorb it, at visibly higher message cost).
//
// Trials fan across core::parallel via flooding::TrialRunner;
// LHG_THREADS controls the lane count.

#include <iostream>
#include <string>

#include "flooding/failure.h"
#include "flooding/repair.h"
#include "flooding/trial_runner.h"
#include "lhg/lhg.h"
#include "report.h"
#include "table.h"

namespace {

struct Agg {
  int repaired = 0;
  int kconn = 0;
  double detect = 0;
  double reconnect = 0;
  double heartbeats = 0;
  double view_msgs = 0;
  double handshake_msgs = 0;
  double edges_needed = 0;
  double net_sent = 0;
  double net_lost = 0;

  static Agg merge(Agg a, const Agg& b) {
    a.repaired += b.repaired;
    a.kconn += b.kconn;
    a.detect += b.detect;
    a.reconnect += b.reconnect;
    a.heartbeats += b.heartbeats;
    a.view_msgs += b.view_msgs;
    a.handshake_msgs += b.handshake_msgs;
    a.edges_needed += b.edges_needed;
    a.net_sent += b.net_sent;
    a.net_lost += b.net_lost;
    return a;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using namespace lhg::flooding;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_repair");

  const int trials = opts.small ? 8 : 24;
  std::cout << "E21: repair after f=k-1 crashes at t=2, " << trials
            << " random crash patterns per row  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"n", "k", "loss", "repaired%", "kconn%", "detect",
                      "reconnect", "hb/node", "vc_msgs", "hs_msgs"},
                     11);
  table.print_header();

  const auto measure = [&](core::NodeId n, std::int32_t k, double loss,
                           std::uint64_t seed) {
    const auto g = build(n, k);
    const bench::WallTimer timer;
    const TrialRunner runner{.seed = seed};
    const Agg agg = runner.run<Agg>(
        trials, Agg{},
        [&](std::int64_t, core::Rng& rng) {
          const auto plan =
              random_crashes(g, k - 1, /*protect=*/0, rng, /*time=*/2.0);
          RepairConfig cfg;
          cfg.k = k;
          cfg.seed = rng();
          cfg.chaos = loss > 0 ? ChaosSpec::iid(loss) : ChaosSpec::none();
          cfg.underlay_loss = loss;
          const auto r = run_repair(g, cfg, plan);
          Agg one;
          one.repaired = r.repaired ? 1 : 0;
          one.kconn = r.k_connected ? 1 : 0;
          one.detect = r.detection_time;
          one.reconnect = r.reconnect_time > 0 ? r.reconnect_time : 0.0;
          one.heartbeats = static_cast<double>(r.heartbeats_sent);
          one.view_msgs = static_cast<double>(r.view_change_messages);
          one.handshake_msgs = static_cast<double>(r.handshake_messages);
          one.edges_needed = r.edges_needed;
          one.net_sent = static_cast<double>(r.net.sent);
          one.net_lost = static_cast<double>(r.net.lost);
          return one;
        },
        Agg::merge);
    table.print_row(n, k, loss, 100.0 * agg.repaired / trials,
                    100.0 * agg.kconn / trials, agg.detect / trials,
                    agg.reconnect / trials, agg.heartbeats / trials / n,
                    agg.view_msgs / trials, agg.handshake_msgs / trials);
    report.add("repair/n=" + std::to_string(n) + "/k=" + std::to_string(k) +
                   "/loss=" + std::to_string(static_cast<int>(loss * 100)),
               {{"n", n},
                {"k", k},
                {"loss", loss},
                {"trials", trials},
                {"repaired", agg.repaired},
                {"kconn", agg.kconn},
                {"mean_detect", agg.detect / trials},
                {"mean_reconnect", agg.reconnect / trials},
                {"view_msgs", agg.view_msgs / trials},
                {"handshake_msgs", agg.handshake_msgs / trials},
                {"net_sent", agg.net_sent / trials},
                {"net_lost", agg.net_lost / trials}},
               timer.elapsed_ns());
  };

  for (const std::int32_t k : {3, 4}) {
    const core::NodeId n = opts.small ? 40 * k : 80 * k;
    measure(n, k, /*loss=*/0.0, static_cast<std::uint64_t>(3000 + k));
    measure(n, k, /*loss=*/0.1, static_cast<std::uint64_t>(3100 + k));
    std::cout << '\n';
  }
  std::cout << "shape check: repaired% == kconn% == 100 on every row; loss "
               "raises vc/hs message cost, not the failure rate\n";
  return opts.finish(report);
}
