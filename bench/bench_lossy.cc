// E13 (extension) — dissemination on lossy links.
//
// Real deployments drop packets; the paper's fail-stop model is the
// clean abstraction.  This bench quantifies the gap: plain flooding vs
// ACK/retransmit reliable broadcast on the same LHG as per-transmission
// loss grows, measuring delivery, messages (incl. ACKs and retries) and
// completion time.
//
// Expected shape: plain flooding's delivery decays as loss grows (the
// redundancy of k disjoint paths shields it at low loss); reliable
// broadcast holds 1.00 delivery at ~2-4x message cost and latency that
// grows with the retransmit interval.
//
// Per-seed trials are independent and fan across core::parallel via
// flooding::TrialRunner; LHG_THREADS controls the lane count.

#include <algorithm>
#include <iostream>
#include <string>

#include "flooding/protocols.h"
#include "flooding/reliable_broadcast.h"
#include "flooding/trial_runner.h"
#include "lhg/lhg.h"
#include "report.h"
#include "table.h"

namespace {

struct Agg {
  double deliv = 0;
  double min_deliv = 1.0;
  int complete = 0;
  double msgs = 0;
  double time = 0;
  double net_lost = 0;
  double net_duplicated = 0;

  static Agg merge(Agg a, const Agg& b) {
    a.deliv += b.deliv;
    a.min_deliv = std::min(a.min_deliv, b.min_deliv);
    a.complete += b.complete;
    a.msgs += b.msgs;
    a.time += b.time;
    a.net_lost += b.net_lost;
    a.net_duplicated += b.net_duplicated;
    return a;
  }
};

Agg account(const lhg::flooding::ReliableBroadcastResult& result) {
  Agg one;
  one.deliv = result.delivery_ratio();
  one.min_deliv = result.delivery_ratio();
  one.complete = result.all_alive_delivered() ? 1 : 0;
  one.msgs = static_cast<double>(result.messages_sent);
  one.time = result.completion_time;
  one.net_lost = static_cast<double>(result.net.lost);
  one.net_duplicated = static_cast<double>(result.net.duplicated);
  return one;
}

/// Bursty adversary with the same stationary loss rate as the i.i.d.
/// rows (P(bad) = 0.25 here), plus duplication and reordering.
lhg::flooding::ChaosSpec burst_chaos(double loss) {
  auto chaos = lhg::flooding::ChaosSpec::bursty(
      /*good_to_bad=*/0.1, /*bad_to_good=*/0.3,
      /*loss_bad=*/std::min(4.0 * loss, 0.9));
  chaos.duplicate = 0.02;
  chaos.reorder = 0.1;
  chaos.reorder_jitter = 0.5;
  return chaos;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using namespace lhg::flooding;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_lossy");

  const int trials = opts.small ? 12 : 30;
  const std::int32_t k = 3;
  const core::NodeId n = 244;
  const auto g = build(n, k);
  std::cout << "E13: loss sweep on a (" << n << ", " << k << ") LHG, "
            << trials << " seeds per row  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"loss", "protocol", "mean_deliv", "min_deliv",
                      "complete%", "msgs/node", "mean_time"},
                     12);
  table.print_header();

  for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    const TrialRunner runner{
        .seed = 5 + static_cast<std::uint64_t>(loss * 1000)};
    const auto sweep = [&](const char* proto, std::int32_t max_retries,
                           const ChaosSpec& chaos) {
      const bench::WallTimer timer;
      const Agg agg = runner.run<Agg>(
          trials, Agg{},
          [&](std::int64_t, core::Rng& rng) {
            // max_retries = 0 is plain flooding on the lossy wire;
            // the reliable machinery adds ACKs + retransmissions.
            return account(reliable_broadcast(
                g, {.source = 0, .seed = rng(), .loss_probability = loss,
                    .chaos = chaos, .retransmit_interval = 3.0,
                    .max_retries = max_retries}));
          },
          Agg::merge);
      const std::int64_t wall_ns = timer.elapsed_ns();
      report.add(std::string("lossy/proto=") + proto +
                     "/loss=" + std::to_string(static_cast<int>(loss * 100)),
                 {{"proto", proto},
                  {"loss", loss},
                  {"trials", trials},
                  {"complete", agg.complete},
                  {"net_lost", agg.net_lost / trials},
                  {"net_duplicated", agg.net_duplicated / trials}},
                 wall_ns);
      table.print_row(loss, proto, agg.deliv / trials, agg.min_deliv,
                      100.0 * agg.complete / trials, agg.msgs / trials / n,
                      agg.time / trials);
    };
    sweep("flood", 0, ChaosSpec::none());
    sweep("reliable", 8, ChaosSpec::none());
    // E20 row: same mean loss delivered in bursts, plus duplication and
    // reordering — the reliable layer must still close every trial.
    if (loss > 0.0) sweep("reliable_burst", 8, burst_chaos(loss));
    std::cout << '\n';
  }
  std::cout << "shape check: flood complete% decays with loss; reliable "
               "(i.i.d. and bursty) stays 100 at bounded extra msgs\n";
  return opts.finish(report);
}
