// E13 (extension) — dissemination on lossy links.
//
// Real deployments drop packets; the paper's fail-stop model is the
// clean abstraction.  This bench quantifies the gap: plain flooding vs
// ACK/retransmit reliable broadcast on the same LHG as per-transmission
// loss grows, measuring delivery, messages (incl. ACKs and retries) and
// completion time.
//
// Expected shape: plain flooding's delivery decays as loss grows (the
// redundancy of k disjoint paths shields it at low loss); reliable
// broadcast holds 1.00 delivery at ~2-4x message cost and latency that
// grows with the retransmit interval.

#include <algorithm>
#include <iostream>

#include "flooding/protocols.h"
#include "flooding/reliable_broadcast.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;
  using namespace lhg::flooding;

  constexpr int kTrials = 30;
  const std::int32_t k = 3;
  const core::NodeId n = 244;
  const auto g = build(n, k);
  std::cout << "E13: loss sweep on a (" << n << ", " << k << ") LHG, "
            << kTrials << " seeds per row\n";
  bench::Table table({"loss", "protocol", "mean_deliv", "min_deliv",
                      "complete%", "msgs/node", "mean_time"},
                     12);
  table.print_header();

  for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    double flood_deliv = 0;
    double flood_min = 1.0;
    int flood_complete = 0;
    double flood_msgs = 0;
    double flood_time = 0;
    double rb_deliv = 0;
    double rb_min = 1.0;
    int rb_complete = 0;
    double rb_msgs = 0;
    double rb_time = 0;

    for (int t = 0; t < kTrials; ++t) {
      const auto seed = static_cast<std::uint64_t>(t) * 7919 + 3;
      // Plain flooding on a lossy network: run it through the reliable
      // machinery with a zero retry budget (identical wire behaviour).
      const auto plain = reliable_broadcast(
          g, {.source = 0, .seed = seed, .loss_probability = loss,
              .max_retries = 0});
      flood_deliv += plain.delivery_ratio();
      flood_min = std::min(flood_min, plain.delivery_ratio());
      flood_complete += plain.all_alive_delivered() ? 1 : 0;
      flood_msgs += static_cast<double>(plain.messages_sent);
      flood_time += plain.completion_time;

      const auto reliable = reliable_broadcast(
          g, {.source = 0, .seed = seed, .loss_probability = loss,
              .retransmit_interval = 3.0, .max_retries = 8});
      rb_deliv += reliable.delivery_ratio();
      rb_min = std::min(rb_min, reliable.delivery_ratio());
      rb_complete += reliable.all_alive_delivered() ? 1 : 0;
      rb_msgs += static_cast<double>(reliable.messages_sent);
      rb_time += reliable.completion_time;
    }
    table.print_row(loss, "flood", flood_deliv / kTrials, flood_min,
                    100.0 * flood_complete / kTrials, flood_msgs / kTrials / n,
                    flood_time / kTrials);
    table.print_row(loss, "reliable", rb_deliv / kTrials, rb_min,
                    100.0 * rb_complete / kTrials, rb_msgs / kTrials / n,
                    rb_time / kTrials);
    std::cout << '\n';
  }
  std::cout << "shape check: flood complete% decays with loss; reliable "
               "stays 100 at bounded extra msgs\n";
  return 0;
}
