// E7 — "resilience beyond k−1" table.
//
// The k−1 guarantee is worst-case; this experiment measures average-
// case survival when f >= k nodes crash: the probability (over 1000
// uniform f-subsets) that the surviving subgraph stays connected, for
// the LHG, the circulant Harary graph, and a random k-regular graph.
//
// Expected shape: all three are 1.00 for f < k; beyond k the random
// regular graph survives best (its cuts are rare), Harary degrades
// fastest (any k ring-adjacent crashes cut it), and the LHG sits in
// between — its only k-cuts are leaf/parent neighborhoods.

#include <iostream>

#include "core/bfs.h"
#include "core/random_graphs.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

namespace {

double survival_probability(const lhg::core::Graph& g, std::int32_t f,
                            int trials, std::uint64_t seed) {
  lhg::core::Rng rng(seed);
  int survived = 0;
  for (int t = 0; t < trials; ++t) {
    const auto removed = rng.sample_without_replacement(g.num_nodes(), f);
    std::vector<lhg::core::NodeId> nodes(removed.begin(), removed.end());
    survived += lhg::core::is_connected_after_node_removal(g, nodes) ? 1 : 0;
  }
  return static_cast<double>(survived) / trials;
}

}  // namespace

int main() {
  using namespace lhg;

  constexpr int kTrials = 1000;
  const std::int32_t k = 4;
  const core::NodeId n = 2 * k + 2 * 49 * (k - 1);  // 302, k-regular lattice
  std::cout << "E7: P(connected | f uniform crashes), " << kTrials
            << " trials, n=" << n << ", k=" << k << "\n";

  const auto lhg_graph = build(n, k);
  const auto harary_graph = harary::circulant(n, k);
  core::Rng rng(99);
  const auto random_graph = core::random_regular_connected(n, k, rng);

  bench::Table table({"f", "lhg", "harary", "rand_kreg"}, 12);
  table.print_header();
  for (const std::int32_t f : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    const auto seed = [f](std::int32_t base) {
      return static_cast<std::uint64_t>(base + f);
    };
    table.print_row(
        f, survival_probability(lhg_graph, f, kTrials, seed(10)),
        survival_probability(harary_graph, f, kTrials, seed(20)),
        survival_probability(random_graph, f, kTrials, seed(30)));
  }
  std::cout << "shape check: all 1.00 for f < k = 4; beyond that "
               "rand_kreg >= lhg >= harary\n";
  return 0;
}
