// E7 — "resilience beyond k−1" table.
//
// The k−1 guarantee is worst-case; this experiment measures average-
// case survival when f >= k nodes crash: the probability (over 1000
// uniform f-subsets) that the surviving subgraph stays connected, for
// the LHG, the circulant Harary graph, and a random k-regular graph.
//
// Expected shape: all three are 1.00 for f < k; beyond k the random
// regular graph survives best (its cuts are rare), Harary degrades
// fastest (any k ring-adjacent crashes cut it), and the LHG sits in
// between — its only k-cuts are leaf/parent neighborhoods.
//
// The trial loop is parallel: trial t draws from the independent stream
// Rng::stream(seed, t), so the survival estimates are identical at
// every thread count (and across chunk schedules).

#include <iostream>

#include "core/bfs.h"
#include "core/parallel.h"
#include "core/random_graphs.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

namespace {

double survival_probability(const lhg::core::Graph& g, std::int32_t f,
                            int trials, std::uint64_t seed) {
  const std::int64_t survived = lhg::core::parallel_reduce<std::int64_t>(
      trials, 8, std::int64_t{0},
      [&](std::int64_t begin, std::int64_t end, int) {
        std::int64_t chunk_survived = 0;
        for (std::int64_t t = begin; t < end; ++t) {
          auto rng = lhg::core::Rng::stream(seed, static_cast<std::uint64_t>(t));
          const auto removed =
              rng.sample_without_replacement(g.num_nodes(), f);
          const std::vector<lhg::core::NodeId> nodes(removed.begin(),
                                                     removed.end());
          chunk_survived +=
              lhg::core::is_connected_after_node_removal(g, nodes) ? 1 : 0;
        }
        return chunk_survived;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  return static_cast<double>(survived) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_resilience");

  const int trials = opts.small ? 200 : 1000;
  const std::int32_t k = 4;
  const core::NodeId n = 2 * k + 2 * 49 * (k - 1);  // 302, k-regular lattice
  std::cout << "E7: P(connected | f uniform crashes), " << trials
            << " trials, n=" << n << ", k=" << k
            << "  [threads=" << core::global_thread_count() << "]\n";

  const auto lhg_graph = build(n, k);
  const auto harary_graph = harary::circulant(n, k);
  core::Rng rng(99);
  const auto random_graph = core::random_regular_connected(n, k, rng);

  bench::Table table({"f", "lhg", "harary", "rand_kreg"}, 12);
  table.print_header();
  const auto measure = [&](const char* topo, const core::Graph& g,
                           std::int32_t f, std::uint64_t seed) {
    const bench::WallTimer timer;
    const double p = survival_probability(g, f, trials, seed);
    report.add(std::string("survival/topo=") + topo +
                   "/f=" + std::to_string(f),
               {{"topo", topo}, {"k", k}, {"n", n}, {"f", f},
                {"trials", std::int64_t{trials}}, {"p", p}},
               timer.elapsed_ns());
    return p;
  };
  for (const std::int32_t f : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    const auto seed = [f](std::int32_t base) {
      return static_cast<std::uint64_t>(base + f);
    };
    table.print_row(f, measure("lhg", lhg_graph, f, seed(10)),
                    measure("harary", harary_graph, f, seed(20)),
                    measure("rand_kreg", random_graph, f, seed(30)));
  }
  std::cout << "shape check: all 1.00 for f < k = 4; beyond that "
               "rand_kreg >= lhg >= harary\n";
  return opts.finish(report);
}
