// E15 (extension) — probabilistic flooding phase transition.
//
// Between spanning trees (p → 0) and deterministic flooding (p = 1)
// lies probabilistic flooding: forward each copy to each neighbor with
// probability p.  Classic result (Lin–Marzullo's gossip-vs-flooding
// setting): reliability undergoes a sharp phase transition in p, and
// the transition point rises when nodes crash — deterministic flooding
// (p = 1) is the only setting with a guarantee.
//
// Expected shape: delivery ratio S-curve in p; complete% reaches 100
// only at p = 1; message savings at p < 1 are proportional to 1 − p.

#include <iostream>

#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;
  using namespace lhg::flooding;

  constexpr int kTrials = 60;
  const std::int32_t k = 4;
  const core::NodeId n = 302;
  const auto g = build(n, k);

  std::cout << "E15: probabilistic flooding on a (" << n << ", " << k
            << ") LHG, " << kTrials << " seeds per row\n";
  bench::Table table({"p", "crashes", "mean_deliv", "min_deliv", "complete%",
                      "msgs/node"},
                     12);
  table.print_header();

  for (const std::int32_t f : {0, k - 1}) {
    for (const double p : {0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
      double total_deliv = 0;
      double min_deliv = 1.0;
      int complete = 0;
      double msgs = 0;
      for (int t = 0; t < kTrials; ++t) {
        core::Rng failure_rng(static_cast<std::uint64_t>(t) * 31 + 1);
        const auto plan = random_crashes(g, f, 0, failure_rng, /*time=*/0.0);
        const auto result = probabilistic_flood(
            g, {.source = 0, .forward_probability = p,
                .seed = static_cast<std::uint64_t>(t) + 1},
            plan);
        total_deliv += result.delivery_ratio();
        min_deliv = std::min(min_deliv, result.delivery_ratio());
        complete += result.all_alive_delivered() ? 1 : 0;
        msgs += static_cast<double>(result.messages_sent);
      }
      table.print_row(p, f, total_deliv / kTrials, min_deliv,
                      100.0 * complete / kTrials,
                      msgs / kTrials / static_cast<double>(n));
    }
    std::cout << '\n';
  }
  std::cout << "shape check: S-curve in p; complete% == 100 only at p = 1.0; "
               "crashes shift the curve right\n";
  return 0;
}
