// Machine-readable benchmark output.
//
// Every bench binary prints a human table (bench/table.h) AND can emit
// the same measurements as JSON via `--json <path>`, giving CI and
// EXPERIMENTS.md a single machine-readable source of truth:
//
//   {
//     "schema": 1,
//     "bench": "bench_diameter",
//     "git_sha": "1a2b3c4",
//     "threads": 8,
//     "entries": [
//       { "name": "diameter/topo=lhg/k=3/n=16384",
//         "params": { "topo": "lhg", "k": 3, "n": 16384 },
//         "wall_ns": 12345678 }
//     ]
//   }
//
// `scripts/bench_compare.py` consumes these files and gates CI on
// wall-time regressions against the checked-in `bench/baseline.json`.
// Entry names must therefore be stable across runs: derive them from
// parameters, never from wall-clock or iteration state.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel.h"

namespace lhg::bench {

/// One labelled benchmark parameter; numeric values are emitted as JSON
/// numbers, everything else as strings.
struct Param {
  Param(std::string k, std::int64_t v)
      : key(std::move(k)), value(static_cast<double>(v)), is_number(true) {}
  Param(std::string k, std::int32_t v)
      : key(std::move(k)), value(static_cast<double>(v)), is_number(true) {}
  Param(std::string k, double v)
      : key(std::move(k)), value(v), is_number(true) {}
  Param(std::string k, std::string v)
      : key(std::move(k)), text(std::move(v)) {}
  Param(std::string k, const char* v) : key(std::move(k)), text(v) {}

  std::string key;
  std::string text;
  double value = 0;
  bool is_number = false;
};

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates named measurements and serializes the report document.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)),
        threads_(core::global_thread_count()) {}

  /// Records one measurement.  `name` identifies the entry in
  /// baseline comparisons; keep it parameter-derived and stable.  The
  /// process peak RSS at record time is attached automatically (as
  /// "peak_rss_bytes", omitted where the platform cannot report it) so
  /// every report feeds the memory-budget gate for free.
  void add(std::string name, std::vector<Param> params,
           std::int64_t wall_ns) {
    entries_.push_back(
        {std::move(name), std::move(params), wall_ns, peak_rss_bytes(), {}});
  }

  /// Records one measurement with an attached metrics document — the
  /// obs::Snapshot::to_json() of an instrumented run.  `metrics_json`
  /// must be a complete JSON value; it is embedded verbatim under the
  /// entry's "metrics" key.  bench_compare.py gates wall_ns only, so
  /// metrics ride along without affecting baseline comparisons.
  void add(std::string name, std::vector<Param> params, std::int64_t wall_ns,
           std::string metrics_json) {
    entries_.push_back({std::move(name), std::move(params), wall_ns,
                        peak_rss_bytes(), std::move(metrics_json)});
  }

  /// Commit identifier for the report: $LHG_GIT_SHA, else $GITHUB_SHA,
  /// else the configure-time LHG_GIT_SHA_DEFAULT, else "unknown".
  /// Empty values are skipped at every level: shallow or detached CI
  /// checkouts configure an empty LHG_GIT_SHA_DEFAULT, and an exported
  /// but empty env var must not mask the next fallback either.
  static std::string git_sha() {
    if (const char* env = std::getenv("LHG_GIT_SHA"); env && *env) return env;
    if (const char* env = std::getenv("GITHUB_SHA"); env && *env) return env;
#ifdef LHG_GIT_SHA_DEFAULT
    if (LHG_GIT_SHA_DEFAULT[0] != '\0') return LHG_GIT_SHA_DEFAULT;
#endif
    return "unknown";
  }

  /// Peak resident set size of this process in bytes (VmHWM from
  /// /proc/self/status), or -1 where unavailable (non-Linux).  This is
  /// the high-water mark since process start — per-entry values in a
  /// multi-row bench are therefore monotone non-decreasing, and the
  /// budget gate reads each row as "peak RSS by the time this row
  /// finished".
  static std::int64_t peak_rss_bytes() { return read_status_kib("VmHWM:"); }

  /// Current resident set size in bytes (VmRSS), or -1.
  static std::int64_t current_rss_bytes() { return read_status_kib("VmRSS:"); }

  std::string to_json() const {
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": 1,\n";
    out << "  \"bench\": " << quoted(bench_name_) << ",\n";
    out << "  \"git_sha\": " << quoted(git_sha()) << ",\n";
    out << "  \"threads\": " << threads_ << ",\n";
    out << "  \"entries\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& e = entries_[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "    { \"name\": " << quoted(e.name) << ", \"params\": {";
      for (std::size_t p = 0; p < e.params.size(); ++p) {
        const auto& param = e.params[p];
        out << (p == 0 ? " " : ", ") << quoted(param.key) << ": ";
        if (param.is_number) {
          out << format_number(param.value);
        } else {
          out << quoted(param.text);
        }
      }
      out << (e.params.empty() ? "}" : " }");
      out << ", \"wall_ns\": " << e.wall_ns;
      if (e.peak_rss_bytes >= 0) {
        out << ", \"peak_rss_bytes\": " << e.peak_rss_bytes;
      }
      if (!e.metrics_json.empty()) {
        out << ", \"metrics\": " << e.metrics_json;
      }
      out << " }";
    }
    out << (entries_.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
  }

  /// Writes the JSON document to `path`; returns false (with a message
  /// on stderr) if the file cannot be written.
  bool write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << bench_name_ << ": cannot write " << path << '\n';
      return false;
    }
    out << to_json();
    std::cout << bench_name_ << ": wrote " << entries_.size()
              << " entries to " << path << '\n';
    return true;
  }

 private:
  struct Entry {
    std::string name;
    std::vector<Param> params;
    std::int64_t wall_ns = 0;
    std::int64_t peak_rss_bytes = -1;  // -1: platform cannot report RSS
    std::string metrics_json;  // empty: entry has no metrics document
  };

  /// Reads a kB-denominated field from /proc/self/status; -1 if the
  /// file or field is unavailable.
  static std::int64_t read_status_kib(const char* field) {
    std::ifstream status("/proc/self/status");
    if (!status) return -1;
    std::string line;
    const std::string key(field);
    while (std::getline(status, line)) {
      if (line.compare(0, key.size(), key) != 0) continue;
      // "VmHWM:    123456 kB"
      std::istringstream rest(line.substr(key.size()));
      std::int64_t kib = -1;
      rest >> kib;
      if (kib < 0) return -1;
      return kib * 1024;
    }
    return -1;
  }

  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static std::string format_number(double v) {
    // Integral parameters round-trip as integers.
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
      return std::to_string(static_cast<std::int64_t>(v));
    }
    std::ostringstream s;
    s << v;
    return s.str();
  }

  std::string bench_name_;
  int threads_;
  std::vector<Entry> entries_;
};

/// Shared command-line contract for bench binaries:
///   --json <path>    write a BenchReport JSON file
///   --small          reduced problem sizes (CI smoke runs)
///   --trace <path>   export a Chrome trace_event JSON file from an
///                    instrumented run (benches that don't trace
///                    silently ignore it)
struct BenchOptions {
  std::string json_path;   // empty: no JSON output
  std::string trace_path;  // empty: no trace export
  bool small = false;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        opts.json_path = argv[++i];
      } else if (arg == "--trace" && i + 1 < argc) {
        opts.trace_path = argv[++i];
      } else if (arg == "--small") {
        opts.small = true;
      } else {
        std::cerr << "usage: " << argv[0]
                  << " [--json <path>] [--trace <path>] [--small]\n";
        std::exit(2);
      }
    }
    return opts;
  }

  /// Writes the report if `--json` was given.  Returns a process exit
  /// code (0 ok, 1 on write failure) so main can `return` it directly.
  int finish(const BenchReport& report) const {
    if (json_path.empty()) return 0;
    return report.write_json(json_path) ? 0 : 1;
  }
};

}  // namespace lhg::bench
