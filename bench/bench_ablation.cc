// E10 — design-choice ablation.
//
// The three ways of absorbing "awkward" n (J&D's widened interiors,
// K-TREE's added leaves, K-DIAMOND's unshared cliques) trade degree
// spread against edge count and regularity coverage.  Fixing k = 4 and
// sweeping n across one full residue cycle makes the trade visible.
//
// Expected shape: all three agree on lattice points (identical graphs);
// between lattice points K-TREE concentrates slack in few high-degree
// nodes (max_deg up to 3k−3) while K-DIAMOND spreads it (max_deg at
// most 2k−2) and is k-regular twice as often; diameters stay within one
// hop of each other.

#include <iostream>

#include "core/diameter.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;

  const std::int32_t k = 4;
  std::cout << "E10: absorbing off-lattice n, k = 4\n";
  bench::Table table({"n", "constraint", "exists", "edges", "max_deg",
                      "regular", "diameter"},
                     11);
  table.print_header();

  const core::NodeId base = 2 * k + 2 * 8 * (k - 1);  // 56: lattice point
  for (core::NodeId n = base; n <= base + 2 * (k - 1); ++n) {
    for (const auto constraint :
         {Constraint::kStrictJD, Constraint::kKTree, Constraint::kKDiamond}) {
      if (!exists(n, k, constraint)) {
        table.print_row(n, to_string(constraint), "no", "-", "-", "-", "-");
        continue;
      }
      const auto g = build(n, k, constraint);
      table.print_row(n, to_string(constraint), "yes", g.num_edges(),
                      g.max_degree(), g.is_regular(k) ? "yes" : "no",
                      core::diameter(g));
    }
    std::cout << '\n';
  }
  std::cout << "shape check: k-diamond max_deg <= " << 2 * k - 2
            << " vs k-tree <= " << 3 * k - 3
            << "; k-diamond regular on every (k-1)-step, k-tree on every "
               "2(k-1)-step\n";
  return 0;
}
