// E3 + E24 — "connectivity" tables.
//
// E3 claim: every constructed graph has exactly κ = λ = k (P1 + P2),
// independent of which residue class n falls in, for all three
// constraints and for the Harary baseline.
//
// E24 claim (verification-scaling sweep): the certificate-then-
// push-relabel verification stack (DESIGN.md §15) makes k-connectivity
// verification fast enough for million-node overlays:
//   old_vs_new      retired per-pair Dinic reference vs the production
//                   path, same capped question, n up to 4096 — expect
//                   >= 10x at n >= 2048 (target 50x on κ at 4096)
//   cert_ablation   the same capped pair probes with and without the
//                   Nagamochi–Ibaraki sparsify step — isolates how much
//                   of the win is the certificate vs push-relabel
//   verify_implicit certificate construction straight off the O(n/k)
//                   implicit view plus sampled capped pair probes at
//                   n = 10^5 (--small) and 10^6 — every row carries
//                   peak_rss_bytes and the 10^5 rows are gated by
//                   bench/memory_budget.json in CI
//
// Expected shape: the kappa and lambda columns equal k on every row and
// the summary counts zero deviations; speedup columns grow with n; the
// implicit rows stay inside the CI memory budget (the certificate never
// materializes the full graph).

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/certificate.h"
#include "core/connectivity.h"
#include "core/random_graphs.h"
#include "core/rng.h"
#include "core/testing/reference_flow.h"
#include "harary/harary.h"
#include "lhg/implicit.h"
#include "lhg/lhg.h"
#include "table.h"

namespace {

using lhg::core::Graph;
using lhg::core::NodeId;

double ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

double mb(std::int64_t bytes) {
  return bytes < 0 ? 0.0 : static_cast<double>(bytes) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_connectivity");

  // --- E3: exact kappa/lambda over the (n, k, constraint) grid --------
  std::cout << "E3: exact kappa / lambda over a dense (n, k) grid  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"k", "n", "construction", "kappa", "lambda", "ok"}, 13);
  table.print_header();

  std::int64_t rows = 0;
  std::int64_t deviations = 0;
  const auto ks = opts.small ? std::vector<std::int32_t>{2, 3, 4}
                             : std::vector<std::int32_t>{2, 3, 4, 5, 6};
  for (const std::int32_t k : ks) {
    // Dense near 2k (every residue), then sparse checkpoints.
    std::vector<core::NodeId> sizes;
    for (core::NodeId n = 2 * k; n < 2 * k + 2 * (k - 1) + 2; ++n) {
      sizes.push_back(n);
    }
    for (const core::NodeId n :
         {6 * k + 1, 12 * k, 25 * k + 3, 60 * k + 1}) {
      if (!opts.small || n <= 30 * k) sizes.push_back(n);
    }
    const bench::WallTimer k_timer;
    for (const auto n : sizes) {
      struct Row {
        std::string name;
        core::Graph graph;
      };
      std::vector<Row> entries;
      for (const auto constraint :
           {Constraint::kStrictJD, Constraint::kKTree, Constraint::kKDiamond}) {
        if (!exists(n, k, constraint)) continue;
        entries.push_back({to_string(constraint), build(n, k, constraint)});
      }
      entries.push_back({"harary", harary::circulant(n, k)});
      for (const auto& [name, graph] : entries) {
        const auto kappa = core::vertex_connectivity(graph, k + 1);
        const auto lambda = core::edge_connectivity(graph, k + 1);
        const bool ok = (kappa == k && lambda == k);
        ++rows;
        deviations += ok ? 0 : 1;
        // Print only the dense band and any deviation to keep the
        // table readable; the summary covers everything.
        if (n <= 2 * k + 2 * (k - 1) + 1 || !ok) {
          table.print_row(k, n, name, kappa, lambda, ok ? "yes" : "NO");
        }
      }
    }
    report.add("kappa_lambda_grid/k=" + std::to_string(k),
               {{"k", k}, {"sizes", static_cast<std::int64_t>(sizes.size())}},
               k_timer.elapsed_ns());
  }
  std::cout << "grid summary: " << rows << " graphs checked, " << deviations
            << " deviations from kappa = lambda = k\n";
  std::cout << "shape check: deviations == 0\n";
  if (deviations != 0) return 1;

  // --- E24a: old-vs-new on the same capped question -------------------
  // Two topologies on purpose.  LHG is the paper's subject and the
  // best case for the new stack: O(log n) diameter keeps every probe's
  // augmenting paths short, so the per-probe cost is dominated by the
  // engine's O(m + n) reset instead of flow routing.  The circulant is
  // the honest worst case: between ANY probe pair (even adjacent
  // vertices) some of the k disjoint paths must wrap half the ring, so
  // every probe pays Θ(n) pushes no matter the probe set, and the
  // old-vs-new gap is constant-factor only.
  constexpr std::int32_t k = 4;
  std::cout << "\nE24a: verification old (per-pair Dinic) vs new "
               "(certificate + push-relabel), k=4, capped at k+1\n";
  bench::Table ovn(
      {"topo", "n", "quantity", "old_ms", "new_ms", "speedup", "agree"}, 11);
  ovn.print_header();
  const auto ovn_sizes = opts.small ? std::vector<std::int64_t>{512}
                                    : std::vector<std::int64_t>{512, 2048, 4096};
  for (const std::string& topo : {std::string("lhg"), std::string("harary")}) {
    for (const std::int64_t n : ovn_sizes) {
      const Graph g = topo == "lhg"
                          ? lhg::build(static_cast<NodeId>(n), k)
                          : harary::circulant(static_cast<NodeId>(n), k);

      const bench::WallTimer old_kappa_timer;
      const auto old_kappa =
          core::testing::reference_vertex_connectivity(g, k + 1);
      const std::int64_t old_kappa_ns = old_kappa_timer.elapsed_ns();
      const bench::WallTimer new_kappa_timer;
      const auto new_kappa = core::vertex_connectivity(g, k + 1);
      const std::int64_t new_kappa_ns = new_kappa_timer.elapsed_ns();
      LHG_CHECK(old_kappa == new_kappa && new_kappa == k,
                "old/new kappa disagree on {} at n={}: {} vs {}", topo, n,
                old_kappa, new_kappa);
      ovn.print_row(topo, n, "kappa", ms(old_kappa_ns), ms(new_kappa_ns),
                    static_cast<double>(old_kappa_ns) /
                        static_cast<double>(std::max<std::int64_t>(
                            new_kappa_ns, 1)),
                    "yes");
      report.add("verify_old/kappa/topo=" + topo + "/n=" + std::to_string(n),
                 {{"k", k}, {"n", n}}, old_kappa_ns);
      report.add("verify_new/kappa/topo=" + topo + "/n=" + std::to_string(n),
                 {{"k", k}, {"n", n}}, new_kappa_ns);

      const bench::WallTimer old_lambda_timer;
      const auto old_lambda =
          core::testing::reference_edge_connectivity(g, k + 1);
      const std::int64_t old_lambda_ns = old_lambda_timer.elapsed_ns();
      const bench::WallTimer new_lambda_timer;
      const auto new_lambda = core::edge_connectivity(g, k + 1);
      const std::int64_t new_lambda_ns = new_lambda_timer.elapsed_ns();
      LHG_CHECK(old_lambda == new_lambda && new_lambda == k,
                "old/new lambda disagree on {} at n={}: {} vs {}", topo, n,
                old_lambda, new_lambda);
      ovn.print_row(topo, n, "lambda", ms(old_lambda_ns), ms(new_lambda_ns),
                    static_cast<double>(old_lambda_ns) /
                        static_cast<double>(std::max<std::int64_t>(
                            new_lambda_ns, 1)),
                    "yes");
      report.add("verify_old/lambda/topo=" + topo + "/n=" + std::to_string(n),
                 {{"k", k}, {"n", n}}, old_lambda_ns);
      report.add("verify_new/lambda/topo=" + topo + "/n=" + std::to_string(n),
                 {{"k", k}, {"n", n}}, new_lambda_ns);
    }
  }

  // --- E24b: certificate ablation -------------------------------------
  // Same capped pair probes (push-relabel both times); the only
  // difference is whether they run on the NI certificate or on the full
  // graph.  Uses a denser G(n, m) so the certificate has fat to trim.
  std::cout << "\nE24b: certificate ablation, capped pair probes on "
               "G(n, 16n) vs its NI certificate\n";
  bench::Table abl({"n", "m_full", "m_cert", "full_ms", "cert_ms", "speedup"},
                   12);
  abl.print_header();
  {
    const std::int64_t n = opts.small ? 512 : 4096;
    core::Rng rng(20260809);
    const Graph dense = core::random_gnm(
        static_cast<NodeId>(n), static_cast<std::int64_t>(16) * n, rng);
    const std::int32_t probes = opts.small ? 64 : 256;
    const auto run_probes = [&](const Graph& host) {
      core::ConnectivityProber prober(host);
      core::Rng pair_rng(7);
      std::int64_t acc = 0;
      for (std::int32_t i = 0; i < probes; ++i) {
        const auto s = static_cast<NodeId>(
            pair_rng.next_below(static_cast<std::uint64_t>(n)));
        const auto t = static_cast<NodeId>(
            pair_rng.next_below(static_cast<std::uint64_t>(n)));
        if (s == t) continue;
        acc += prober.vertex_probe(s, t, k + 1);
        acc += prober.edge_probe(s, t, k + 1);
      }
      return acc;
    };
    const bench::WallTimer cert_build_timer;
    const Graph cert = core::sparse_certificate(dense, k + 1);
    const std::int64_t cert_build_ns = cert_build_timer.elapsed_ns();
    report.add("cert_build/n=" + std::to_string(n),
               {{"k", k}, {"n", n}, {"m_cert", cert.num_edges()}},
               cert_build_ns);

    const bench::WallTimer full_timer;
    const std::int64_t full_acc = run_probes(dense);
    const std::int64_t full_ns = full_timer.elapsed_ns();
    const bench::WallTimer cert_timer;
    const std::int64_t cert_acc = run_probes(cert);
    const std::int64_t cert_ns = cert_timer.elapsed_ns();
    LHG_CHECK(full_acc == cert_acc,
              "certificate changed capped probe answers: {} vs {}", full_acc,
              cert_acc);
    abl.print_row(n, dense.num_edges(), cert.num_edges(), ms(full_ns),
                  ms(cert_ns + cert_build_ns),
                  static_cast<double>(full_ns) /
                      static_cast<double>(std::max<std::int64_t>(
                          cert_ns + cert_build_ns, 1)));
    report.add("probes_nocert/n=" + std::to_string(n),
               {{"k", k}, {"n", n}, {"probes", probes}}, full_ns);
    report.add("probes_cert/n=" + std::to_string(n),
               {{"k", k}, {"n", n}, {"probes", probes}}, cert_ns);
  }

  // --- E24c: implicit-view verification at scale ----------------------
  // The certificate scan runs storage-free over lhg::ImplicitLhg — the
  // full graph is never materialized — then sampled pairs are probed on
  // the ≤ (k+1)·n-edge certificate.  Peak RSS rides on every row; CI
  // gates the n=10^5 rows via bench/memory_budget.json.
  std::cout << "\nE24c: implicit-view verification at scale (k=" << k
            << ", peak RSS per row)\n";
  bench::Table imp({"n", "phase", "ms", "peak_rss_mb", "detail"}, 16);
  imp.print_header();
  const auto imp_sizes = opts.small
                             ? std::vector<std::int64_t>{100'000}
                             : std::vector<std::int64_t>{100'000, 1'000'000};
  for (const std::int64_t n : imp_sizes) {
    const ImplicitLhg view(n, k);

    const bench::WallTimer cert_timer;
    const Graph cert = core::sparse_certificate(view, k + 1);
    const std::int64_t cert_ns = cert_timer.elapsed_ns();
    imp.print_row(n, "cert_implicit", ms(cert_ns),
                  mb(bench::BenchReport::peak_rss_bytes()),
                  "m=" + std::to_string(cert.num_edges()));
    report.add("verify_implicit_cert/k=" + std::to_string(k) +
                   "/n=" + std::to_string(n),
               {{"k", k}, {"n", n}, {"m_cert", cert.num_edges()}}, cert_ns);

    // Sampled capped pair probes: every κ(s,t) and λ(s,t) must be >= k
    // in a k-connected overlay; the certificate preserves that up to
    // the k+1 cap.
    const std::int32_t samples = opts.small ? 16 : 32;
    core::Rng rng(23);
    core::ConnectivityProber prober(cert);
    const bench::WallTimer probe_timer;
    std::int32_t min_kappa = INT32_MAX;
    std::int32_t min_lambda = INT32_MAX;
    for (std::int32_t i = 0; i < samples; ++i) {
      const auto s = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      const auto t = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (s == t) continue;
      min_kappa = std::min(min_kappa, prober.vertex_probe(s, t, k + 1));
      min_lambda = std::min(min_lambda, prober.edge_probe(s, t, k + 1));
    }
    const std::int64_t probe_ns = probe_timer.elapsed_ns();
    LHG_CHECK(min_kappa >= k && min_lambda >= k,
              "sampled connectivity below k at n={}: kappa {} lambda {}", n,
              min_kappa, min_lambda);
    imp.print_row(n, "probes_sampled", ms(probe_ns),
                  mb(bench::BenchReport::peak_rss_bytes()),
                  "pairs=" + std::to_string(samples) +
                      " min_kappa=" + std::to_string(min_kappa));
    report.add("verify_implicit_probes/k=" + std::to_string(k) +
                   "/n=" + std::to_string(n),
               {{"k", k}, {"n", n}, {"samples", samples}}, probe_ns);
  }

  std::cout << "\nshape check: on the lhg topology the speedup grows with n "
               "(>= 10x at n >= 2048); the circulant worst case stays a "
               "constant-factor win (its probes are path-length-bound); "
               "implicit rows never materialize the full graph, so their "
               "peak RSS stays within bench/memory_budget.json.\n";
  return opts.finish(report);
}
