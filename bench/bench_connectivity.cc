// E3 — "connectivity" table.
//
// Claim: every constructed graph has exactly κ = λ = k (P1 + P2),
// independent of which residue class n falls in, for all three
// constraints and for the Harary baseline.
//
// Expected shape: the kappa and lambda columns equal k on every row;
// the final summary counts zero deviations over the full grid.

#include <iostream>

#include "core/connectivity.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

int main(int argc, char** argv) {
  using namespace lhg;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_connectivity");

  std::cout << "E3: exact kappa / lambda over a dense (n, k) grid  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"k", "n", "construction", "kappa", "lambda", "ok"}, 13);
  table.print_header();

  std::int64_t rows = 0;
  std::int64_t deviations = 0;
  const auto ks = opts.small ? std::vector<std::int32_t>{2, 3, 4}
                             : std::vector<std::int32_t>{2, 3, 4, 5, 6};
  for (const std::int32_t k : ks) {
    // Dense near 2k (every residue), then sparse checkpoints.
    std::vector<core::NodeId> sizes;
    for (core::NodeId n = 2 * k; n < 2 * k + 2 * (k - 1) + 2; ++n) {
      sizes.push_back(n);
    }
    for (const core::NodeId n :
         {6 * k + 1, 12 * k, 25 * k + 3, 60 * k + 1}) {
      if (!opts.small || n <= 30 * k) sizes.push_back(n);
    }
    const bench::WallTimer k_timer;
    for (const auto n : sizes) {
      struct Row {
        std::string name;
        core::Graph graph;
      };
      std::vector<Row> entries;
      for (const auto constraint :
           {Constraint::kStrictJD, Constraint::kKTree, Constraint::kKDiamond}) {
        if (!exists(n, k, constraint)) continue;
        entries.push_back({to_string(constraint), build(n, k, constraint)});
      }
      entries.push_back({"harary", harary::circulant(n, k)});
      for (const auto& [name, graph] : entries) {
        const auto kappa = core::vertex_connectivity(graph, k + 1);
        const auto lambda = core::edge_connectivity(graph, k + 1);
        const bool ok = (kappa == k && lambda == k);
        ++rows;
        deviations += ok ? 0 : 1;
        // Print only the dense band and any deviation to keep the
        // table readable; the summary covers everything.
        if (n <= 2 * k + 2 * (k - 1) + 1 || !ok) {
          table.print_row(k, n, name, kappa, lambda, ok ? "yes" : "NO");
        }
      }
    }
    report.add("kappa_lambda_grid/k=" + std::to_string(k),
               {{"k", k}, {"sizes", static_cast<std::int64_t>(sizes.size())}},
               k_timer.elapsed_ns());
    std::cout << '\n';
  }
  std::cout << "grid summary: " << rows << " graphs checked, " << deviations
            << " deviations from kappa = lambda = k\n";
  std::cout << "shape check: deviations == 0\n";
  if (deviations != 0) return 1;
  return opts.finish(report);
}
