// E2 — "edges / link minimality" table.
//
// Claim: an LHG pays at most a small constant of edges over Harary's
// provable optimum ⌈k·n/2⌉, and every single link is critical (P3:
// removing any link lowers node or link connectivity).
//
// Expected shape: overhead is 0 on regular lattice sizes and bounded by
// ~k/2 edges elsewhere (K-DIAMOND) / ~(2k−3)·k/2 (K-TREE); the
// "critical" column always equals the checked sample size.

#include <iostream>

#include "harary/harary.h"
#include "lhg/lhg.h"
#include "lhg/verifier.h"
#include "table.h"

int main() {
  using namespace lhg;

  std::cout << "E2: edge counts vs Harary optimum + link-minimality check\n";
  bench::Table table({"k", "n", "constraint", "edges", "optimum", "overhead",
                      "critical", "checked"},
                     11);
  table.print_header();

  for (const std::int32_t k : {3, 5, 8}) {
    for (const core::NodeId n :
         {2 * k, 2 * k + 1, 2 * k + 2 * (k - 1), 4 * k + 3, 8 * k, 8 * k + 5,
          16 * k + 1}) {
      for (const auto constraint :
           {Constraint::kKTree, Constraint::kKDiamond}) {
        const auto g = build(n, k, constraint);
        VerifyOptions options;
        options.minimality_sample = 64;  // cap the P3 cost per row
        const auto report = verify(g, k, options);
        const auto optimum = harary::min_edges(n, k);
        table.print_row(
            k, n, to_string(constraint), g.num_edges(), optimum,
            g.num_edges() - optimum,
            report.minimality_checked_edges - report.minimality_violations,
            report.minimality_checked_edges);
      }
    }
    std::cout << '\n';
  }
  std::cout << "shape check: overhead == 0 on k-regular sizes; critical == "
               "checked everywhere (P3 holds)\n";
  return 0;
}
