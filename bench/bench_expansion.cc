// E16 (extension) — spectral expansion.
//
// Logarithmic diameter is necessary but not sufficient for expansion;
// the related work (Law–Siu random expanders) gets both.  This bench
// estimates the lazy-walk spectral gap and the sweep-cut conductance of
// the three topologies as n grows, exposing the structural honesty
// point: the LHG beats the circulant's Θ(1/n²) gap by orders of
// magnitude but remains a poor expander (tree cuts keep conductance
// O(1/(k·n))), while random k-regular graphs have constant gap.
//
// Expected shape: harary gap ~ c/n² (×¼ per doubling); lhg gap decays
// ~1/n (subtree cuts grow linearly); rand-kreg gap flat.

#include <iostream>
#include <sstream>

#include "core/random_graphs.h"
#include "core/rng.h"
#include "core/spectral.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;
  using core::lazy_walk_lambda2;
  using core::sweep_conductance;

  const std::int32_t k = 4;
  std::cout << "E16: lazy-walk spectral gap and sweep conductance, k = " << k
            << "\n";
  bench::Table table({"n", "topology", "gap", "conductance", "iters"}, 14);
  table.print_header();

  for (const core::NodeId n : {62, 126, 254, 510, 1022}) {
    struct Row {
      const char* name;
      core::Graph graph;
    };
    core::Rng rng(static_cast<std::uint64_t>(n));
    const std::vector<Row> rows = {
        {"lhg", build(n, k)},
        {"harary", harary::circulant(n, k)},
        {"rand-kreg", core::random_regular_connected(n, k, rng)},
    };
    auto sci = [](double value) {
      std::ostringstream out;
      out.precision(3);
      out << std::scientific << value;
      return out.str();
    };
    for (const auto& [name, graph] : rows) {
      const auto spectral = lazy_walk_lambda2(graph, 20000, 1e-12);
      const auto phi = sweep_conductance(graph);
      table.print_row(n, name, sci(spectral.gap), sci(phi),
                      spectral.iterations);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: rand-kreg gap flat (~0.05-0.1); lhg gap decays "
               "slower than harary's ~1/n^2; conductance ordering matches\n";
  return 0;
}
