// E12 (extension) — structured routing stretch.
//
// The pasted-tree structure supports unicast routing from local state
// only (each node knows its copy and tree position).  This bench
// measures the cost of that locality: route length versus the BFS
// shortest path, across sizes and constraints.
//
// Expected shape: mean stretch stays a small constant (~1.2–2.0) and
// the worst route respects the 4·height+4 bound, while the routing
// state per node is O(1) versus O(n) for shortest-path tables.

#include <algorithm>
#include <iostream>

#include "core/bfs.h"
#include "core/rng.h"
#include "lhg/routing.h"
#include "table.h"

int main() {
  using namespace lhg;
  using core::NodeId;

  std::cout << "E12: routing stretch over 400 sampled pairs per row\n";
  bench::Table table({"constraint", "k", "n", "mean_stretch", "max_stretch",
                      "worst_hops", "bound"},
                     13);
  table.print_header();

  for (const auto constraint : {Constraint::kKTree, Constraint::kKDiamond}) {
    for (const std::int32_t k : {3, 5}) {
      for (const NodeId n : {64, 256, 1024, 4096}) {
        if (!exists(n, k, constraint)) continue;
        auto [graph, router] = make_routed_overlay(n, k, constraint);
        core::Rng rng(static_cast<std::uint64_t>(n) *
                      static_cast<std::uint64_t>(k));
        double total_stretch = 0;
        double max_stretch = 0;
        std::int32_t worst = 0;
        int measured = 0;
        for (int trial = 0; trial < 400; ++trial) {
          const auto u = static_cast<NodeId>(
              rng.next_below(static_cast<std::uint64_t>(n)));
          const auto dist = core::bfs_distances(graph, u);
          const auto v = static_cast<NodeId>(
              rng.next_below(static_cast<std::uint64_t>(n)));
          if (u == v) continue;
          const auto hops =
              static_cast<std::int32_t>(router.route(u, v).size()) - 1;
          const double stretch =
              static_cast<double>(hops) /
              static_cast<double>(dist[static_cast<std::size_t>(v)]);
          total_stretch += stretch;
          max_stretch = std::max(max_stretch, stretch);
          worst = std::max(worst, hops);
          ++measured;
        }
        table.print_row(to_string(constraint), k, n, total_stretch / measured,
                        max_stretch, worst, router.max_route_hops());
      }
    }
    std::cout << '\n';
  }
  std::cout << "shape check: mean_stretch flat in n (~1.2-2.0); worst_hops "
               "<= bound = 4*height+4\n";
  return 0;
}
