// E18 (extension) — heartbeat failure detection on the overlay.
//
// The flooding guarantee is only useful if failures are noticed; the
// natural detector runs heartbeats over the same O(k)-degree links.
// This bench sweeps the timeout/loss plane and reports the classic
// completeness-vs-accuracy trade: detection latency of real crashes vs
// false suspicions caused by loss.
//
// Expected shape: detection latency ~ timeout + interval/2, independent
// of n (monitoring is per-link); false suspicions explode when the
// timeout is within ~2 lost beats of the interval and vanish beyond
// ~4-5 intervals; the message budget is exactly 2m per interval.

#include <iostream>

#include "flooding/failure.h"
#include "flooding/heartbeat.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;
  using namespace lhg::flooding;

  const std::int32_t k = 4;
  const core::NodeId n = 302;
  const auto g = build(n, k);
  std::cout << "E18: heartbeat detector on a (" << n << ", " << k
            << ") overlay, horizon 60, interval 1\n";
  bench::Table table({"timeout", "loss", "detected", "max_latency",
                      "false_susp", "beats/node"},
                     12);
  table.print_header();

  for (const double timeout : {2.1, 3.5, 5.0, 8.0}) {
    for (const double loss : {0.0, 0.1, 0.3}) {
      FailurePlan plan;
      plan.crashes.push_back({7, 10.0});
      plan.crashes.push_back({42, 25.0});
      plan.crashes.push_back({100, 40.0});
      const auto result = run_heartbeat(
          g, {.interval = 1.0, .timeout = timeout, .horizon = 60.0,
              .loss_probability = loss, .seed = 5},
          plan);
      std::int32_t detected = 0;
      for (const auto& d : result.detections) {
        detected += d.detection_latency >= 0 ? 1 : 0;
      }
      table.print_row(
          timeout, loss,
          std::to_string(detected) + "/" +
              std::to_string(result.detections.size()),
          result.max_detection_latency(), result.false_suspicions,
          static_cast<double>(result.heartbeats_sent) / n);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: detected == 3/3 everywhere; max_latency ~ "
               "timeout + O(1); false_susp > 0 only at small timeout with "
               "loss, vanishing as timeout grows\n";
  return 0;
}
