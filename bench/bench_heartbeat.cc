// E18 (extension) — heartbeat failure detection on the overlay.
//
// The flooding guarantee is only useful if failures are noticed; the
// natural detector runs heartbeats over the same O(k)-degree links.
// This bench sweeps the timeout/loss plane and reports the classic
// completeness-vs-accuracy trade: detection latency of real crashes vs
// false suspicions caused by loss.
//
// Expected shape: detection latency ~ timeout + interval/2, independent
// of n (monitoring is per-link); false suspicions explode when the
// timeout is within ~2 lost beats of the interval and vanish beyond
// ~4-5 intervals; the message budget is exactly 2m per interval.
//
// Each cell averages over independent per-seed trials fanned across
// core::parallel by flooding::TrialRunner (LHG_THREADS lanes).

#include <algorithm>
#include <iostream>
#include <string>

#include "flooding/failure.h"
#include "flooding/heartbeat.h"
#include "flooding/trial_runner.h"
#include "lhg/lhg.h"
#include "report.h"
#include "table.h"

namespace {

struct Agg {
  std::int32_t detected = 0;
  std::int32_t crashes = 0;
  double max_latency = 0;
  std::int64_t false_susp = 0;
  std::int64_t beats = 0;

  static Agg merge(Agg a, const Agg& b) {
    a.detected += b.detected;
    a.crashes += b.crashes;
    a.max_latency = std::max(a.max_latency, b.max_latency);
    a.false_susp += b.false_susp;
    a.beats += b.beats;
    return a;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using namespace lhg::flooding;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_heartbeat");

  const int trials = opts.small ? 4 : 8;
  const std::int32_t k = 4;
  const core::NodeId n = 302;
  const auto g = build(n, k);
  std::cout << "E18: heartbeat detector on a (" << n << ", " << k
            << ") overlay, horizon 60, interval 1, " << trials
            << " seeds per cell  [threads=" << core::global_thread_count()
            << "]\n";
  bench::Table table({"timeout", "loss", "detected", "max_latency",
                      "false_susp", "beats/node"},
                     12);
  table.print_header();

  for (const double timeout : {2.1, 3.5, 5.0, 8.0}) {
    for (const double loss : {0.0, 0.1, 0.3}) {
      const TrialRunner runner{
          .seed = static_cast<std::uint64_t>(timeout * 10) * 1000 +
                  static_cast<std::uint64_t>(loss * 100)};
      const bench::WallTimer timer;
      const Agg agg = runner.run<Agg>(
          trials, Agg{},
          [&](std::int64_t, core::Rng& rng) {
            FailurePlan plan;
            plan.crashes.push_back({7, 10.0});
            plan.crashes.push_back({42, 25.0});
            plan.crashes.push_back({100, 40.0});
            const auto result = run_heartbeat(
                g, {.interval = 1.0, .timeout = timeout, .horizon = 60.0,
                    .loss_probability = loss, .seed = rng()},
                plan);
            Agg one;
            for (const auto& d : result.detections) {
              one.detected += d.detection_latency >= 0 ? 1 : 0;
            }
            one.crashes = static_cast<std::int32_t>(result.detections.size());
            one.max_latency = result.max_detection_latency();
            one.false_susp = result.false_suspicions;
            one.beats = result.heartbeats_sent;
            return one;
          },
          Agg::merge);
      const std::int64_t wall_ns = timer.elapsed_ns();
      report.add("heartbeat/timeout=" +
                     std::to_string(static_cast<int>(timeout * 10)) +
                     "/loss=" + std::to_string(static_cast<int>(loss * 100)),
                 {{"timeout", timeout},
                  {"loss", loss},
                  {"trials", trials},
                  {"false_susp", agg.false_susp}},
                 wall_ns);
      table.print_row(
          timeout, loss,
          std::to_string(agg.detected) + "/" + std::to_string(agg.crashes),
          agg.max_latency,
          static_cast<double>(agg.false_susp) / trials,
          static_cast<double>(agg.beats) / trials / n);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: detected == crashes everywhere; max_latency ~ "
               "timeout + O(1); false_susp > 0 only at small timeout with "
               "loss, vanishing as timeout grows\n";
  return opts.finish(report);
}
