// E23 — million-node scaling sweep and memory-budget source.
//
// Claim: the implicit adjacency view (lhg/implicit.h) makes LHG
// construction O(n/k) memory and ~ns-per-query, so million-node
// overlays are routine: BFS, sampled diameter and a full flood run
// against the view without ever materializing an edge, and the
// memory-lean Graph::from_csr path materializes when a concrete graph
// is worth its footprint.
//
// Per decade of n (10^3 .. 10^6; --small caps at 10^5 for CI, the full
// run adds an implicit-construction row at 10^7):
//   implicit_construct  build the ImplicitLhg view
//   materialize         emit it as a core::Graph via from_csr
//   equivalence         sampled implicit-vs-materialized adjacency +
//                       edge-id agreement (hard LHG_CHECK on mismatch)
//   bfs_implicit        full BFS over the view
//   bfs_csr             the same BFS over the materialized graph
//   diameter_implicit   double-sweep sampled diameter over the view
//   flood_implicit      one full flood (fixed latency, no chaos)
//
// Every row carries peak_rss_bytes (bench/report.h); CI gates the
// --small rows against bench/memory_budget.json via
// scripts/bench_compare.py --memory-gate — the budget is a hard cap,
// so an accidental edge materialization (or a from_csr regression back
// to hash-set dedup) fails the job even when wall time stays green.
//
// Expected shape: implicit_construct grows ~linearly in n/k and its
// RSS stays in the tens of MB at n=10^6 where the materialized graph
// costs hundreds; bfs_implicit is within a small constant of bfs_csr
// (neighbor arithmetic vs a cache-friendly CSR load).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/bfs_generic.h"
#include "core/diameter_generic.h"
#include "core/graph.h"
#include "core/rng.h"
#include "flooding/flood_generic.h"
#include "lhg/implicit.h"
#include "lhg/lhg.h"
#include "table.h"

namespace {

using lhg::core::NodeId;

/// Sampled implicit-vs-materialized equivalence: full neighbor-list and
/// edge-id agreement on `samples` random nodes (plus the first and last
/// node).  Returns the number of adjacency entries checked; any
/// disagreement aborts the bench via LHG_CHECK — a broken view must
/// fail the CI job, not publish wrong timings.
std::int64_t check_equivalence(const lhg::ImplicitLhg& view,
                               const lhg::core::Graph& g,
                               std::int32_t samples, std::uint64_t seed) {
  LHG_CHECK(view.num_nodes() == g.num_nodes(), "equivalence: n {} vs {}",
            view.num_nodes(), g.num_nodes());
  LHG_CHECK(view.num_edges() == g.num_edges(), "equivalence: m {} vs {}",
            view.num_edges(), g.num_edges());
  lhg::core::Rng rng(seed);
  std::int64_t checked = 0;
  for (std::int32_t s = -2; s < samples; ++s) {
    const NodeId v =
        s == -2 ? 0
        : s == -1
            ? g.num_nodes() - 1
            : static_cast<NodeId>(rng.next_below(
                  static_cast<std::uint64_t>(g.num_nodes())));
    LHG_CHECK(view.degree(v) == g.degree(v), "equivalence: degree({}) {} vs {}",
              v, view.degree(v), g.degree(v));
    const auto neighbors = g.neighbors(v);
    for (std::int32_t i = 0; i < g.degree(v); ++i) {
      const NodeId expect = neighbors[static_cast<std::size_t>(i)];
      LHG_CHECK(view.neighbor(v, i) == expect,
                "equivalence: neighbor({}, {}) {} vs {}", v, i,
                view.neighbor(v, i), expect);
      LHG_CHECK(view.incident_edge(v, i) == g.edge_index(v, expect),
                "equivalence: edge id of ({}, {}) {} vs {}", v, expect,
                view.incident_edge(v, i), g.edge_index(v, expect));
      ++checked;
    }
  }
  return checked;
}

double mb(std::int64_t bytes) {
  return bytes < 0 ? 0.0 : static_cast<double>(bytes) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_scaling");

  constexpr std::int32_t k = 4;
  const std::int64_t max_n = opts.small ? 100'000 : 1'000'000;
  const std::int32_t equivalence_samples = opts.small ? 400 : 1000;

  std::cout << "E23: implicit vs materialized LHG at scale (k=" << k
            << ", peak RSS per row)  [threads=" << core::global_thread_count()
            << "]\n";
  bench::Table table({"n", "phase", "ms", "peak_rss_mb", "detail"}, 16);
  table.print_header();

  auto record = [&](const std::string& phase, std::int64_t n,
                    std::int64_t wall_ns, const std::string& detail,
                    std::vector<bench::Param> extra = {}) {
    table.print_row(n, phase, static_cast<double>(wall_ns) / 1e6,
                    mb(bench::BenchReport::peak_rss_bytes()), detail);
    std::vector<bench::Param> params{{"k", k}, {"n", n}};
    for (auto& p : extra) params.push_back(std::move(p));
    report.add(phase + "/k=" + std::to_string(k) + "/n=" + std::to_string(n),
               std::move(params), wall_ns);
  };

  for (std::int64_t n = 1'000; n <= max_n; n *= 10) {
    // --- implicit construction: O(n/k) tables, no edges ---
    const bench::WallTimer build_timer;
    const ImplicitLhg view(n, k);
    record("implicit_construct", n, build_timer.elapsed_ns(),
           "m=" + std::to_string(view.num_edges()),
           {{"m", view.num_edges()}});

    // --- materialize through the from_csr fast path ---
    const bench::WallTimer mat_timer;
    const core::Graph g = view.materialize();
    record("materialize", n, mat_timer.elapsed_ns(),
           "m=" + std::to_string(g.num_edges()));

    // --- sampled equivalence: adjacency + edge ids must agree ---
    const bench::WallTimer eq_timer;
    const std::int64_t checked =
        check_equivalence(view, g, equivalence_samples, /*seed=*/23);
    record("equivalence", n, eq_timer.elapsed_ns(),
           "checked=" + std::to_string(checked));

    // --- BFS, implicit vs CSR (identical distance vectors) ---
    const bench::WallTimer bfs_imp_timer;
    const auto dist_implicit = core::generic_bfs_distances(view, 0);
    const std::int64_t bfs_imp_ns = bfs_imp_timer.elapsed_ns();

    const bench::WallTimer bfs_csr_timer;
    const auto dist_csr = core::generic_bfs_distances(g, 0);
    const std::int64_t bfs_csr_ns = bfs_csr_timer.elapsed_ns();
    LHG_CHECK(dist_implicit == dist_csr,
              "bfs over implicit and CSR disagree at n={}", n);
    std::int32_t ecc = 0;
    for (const std::int32_t d : dist_csr) ecc = std::max(ecc, d);
    record("bfs_implicit", n, bfs_imp_ns, "ecc=" + std::to_string(ecc));
    record("bfs_csr", n, bfs_csr_ns, "ecc=" + std::to_string(ecc));

    // --- sampled diameter over the view ---
    const bench::WallTimer diam_timer;
    const auto est = core::diameter_sampled(view, /*samples=*/4, /*seed=*/23);
    record("diameter_implicit", n, diam_timer.elapsed_ns(),
           "lb=" + std::to_string(est.lower_bound),
           {{"diam_lb", est.lower_bound}});

    // --- one full flood over the view (fixed latency, no chaos) ---
    flooding::FloodConfig cfg;
    cfg.source = 0;
    cfg.seed = 23;
    const bench::WallTimer flood_timer;
    const auto flood_result = flooding::flood(view, cfg);
    LHG_CHECK(flood_result.all_alive_delivered(),
              "flood over implicit view missed nodes at n={}", n);
    record("flood_implicit", n, flood_timer.elapsed_ns(),
           "msgs=" + std::to_string(flood_result.messages_sent),
           {{"messages", flood_result.messages_sent}});
  }

  if (!opts.small) {
    // Construction-only decade beyond materialization range: the view
    // holds a 10^7-node overlay in O(n/k) tables.
    const std::int64_t n = 10'000'000;
    const bench::WallTimer build_timer;
    const ImplicitLhg view(n, k);
    const std::int64_t build_ns = build_timer.elapsed_ns();
    // Touch the far corners so the row reflects a usable view, not a
    // lazily-faulted one.
    const NodeId last = view.num_nodes() - 1;
    LHG_CHECK(view.degree(last) == k && view.neighbor(0, 0) > 0,
              "implicit view smoke check failed at n={}", n);
    record("implicit_construct", n, build_ns,
           "m=" + std::to_string(view.num_edges()),
           {{"m", view.num_edges()}});
  }

  std::cout << "\nshape check: implicit_construct RSS stays O(n/k) while "
               "materialize adds the full CSR + twin-arc footprint;\n"
               "bfs_implicit tracks bfs_csr within a small constant.\n";
  return opts.finish(report);
}
