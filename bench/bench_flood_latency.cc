// E4 — "flooding latency, failure-free" figure, plus the event-engine
// throughput gate.
//
// Claim: a flood over an LHG completes in O(log n) hop-rounds while the
// same protocol over the circulant Harary graph needs Θ(n/k) rounds; a
// degree-matched random regular graph sits near the LHG (random graphs
// have logarithmic diameter w.h.p. but no deterministic guarantee).
//
// Expected shape: the harary column grows linearly in n; lhg and
// random-k-regular grow by an additive constant per doubling.
//
// Each row runs `trials` independent floods (rotating the source) fanned
// across core::parallel by flooding::TrialRunner; the timed region is the
// whole trial sweep, and the JSON entry carries the total simulator
// events so `events / wall_ns` tracks raw event-engine throughput.  Run
// with LHG_THREADS=1 to measure the single-thread engine itself.

#include <algorithm>
#include <iostream>
#include <string>

#include "core/random_graphs.h"
#include "flooding/protocols.h"
#include "flooding/trial_runner.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "obs/trace.h"
#include "report.h"
#include "table.h"

namespace {

struct Agg {
  std::int64_t events = 0;
  std::int64_t messages = 0;
  std::int32_t max_hops = 0;
  double total_time = 0;
  std::int32_t incomplete = 0;

  static Agg merge(Agg a, const Agg& b) {
    a.events += b.events;
    a.messages += b.messages;
    a.max_hops = std::max(a.max_hops, b.max_hops);
    a.total_time += b.total_time;
    a.incomplete += b.incomplete;
    return a;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using flooding::flood;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_flood_latency");

  const int trials = opts.small ? 32 : 64;
  const core::NodeId max_n = opts.small ? 1024 : 8192;
  std::cout << "E4: failure-free flood completion (hop-rounds), " << trials
            << " rotating-source trials per row  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"k", "n", "lhg_rounds", "harary_rounds", "randreg_rounds",
                      "lhg_msgs", "harary_msgs", "lhg_Mev/s"},
                     15);
  table.print_header();

  const auto sweep = [&](const core::Graph& g, const char* topo,
                         std::int32_t k, core::NodeId n) {
    const flooding::TrialRunner runner{
        .seed = static_cast<std::uint64_t>(n) * 131 +
                static_cast<std::uint64_t>(k)};
    const bench::WallTimer timer;
    const Agg agg = runner.run<Agg>(
        trials, Agg{},
        [&](std::int64_t t, core::Rng& rng) {
          const auto source = static_cast<core::NodeId>(
              t % static_cast<std::int64_t>(g.num_nodes()));
          const auto result = flood(g, {.source = source, .seed = rng()});
          Agg one;
          one.events = result.events_processed;
          one.messages = result.messages_sent;
          one.max_hops = result.completion_hops;
          one.total_time = result.completion_time;
          one.incomplete = result.all_alive_delivered() ? 0 : 1;
          return one;
        },
        Agg::merge);
    const std::int64_t wall_ns = timer.elapsed_ns();
    report.add(std::string("flood/topo=") + topo + "/k=" + std::to_string(k) +
                   "/n=" + std::to_string(n),
               {{"topo", topo},
                {"k", k},
                {"n", n},
                {"trials", trials},
                {"events", agg.events},
                {"messages", agg.messages},
                {"incomplete", agg.incomplete}},
               wall_ns);
    return std::pair<Agg, std::int64_t>(agg, wall_ns);
  };

  for (const std::int32_t k : {3, 4, 6}) {
    for (core::NodeId n = 64; n <= max_n; n *= 2) {
      const auto lhg_graph = build(n, k);
      const auto harary_graph = harary::circulant(n, k);
      core::Rng rng(static_cast<std::uint64_t>(n) * 31 +
                    static_cast<std::uint64_t>(k));
      const auto random_graph =
          (static_cast<std::int64_t>(n) * k) % 2 == 0
              ? core::random_regular_connected(n, k, rng)
              : core::random_regular_connected(n + 1, k, rng);

      const auto [lhg_agg, lhg_ns] = sweep(lhg_graph, "lhg", k, n);
      const auto [harary_agg, harary_ns] = sweep(harary_graph, "harary", k, n);
      const auto [random_agg, random_ns] = sweep(random_graph, "randreg", k, n);

      table.print_row(k, n, lhg_agg.max_hops, harary_agg.max_hops,
                      random_agg.max_hops, lhg_agg.messages / trials,
                      harary_agg.messages / trials,
                      1e3 * static_cast<double>(lhg_agg.events) /
                          static_cast<double>(lhg_ns));
    }
    std::cout << '\n';
  }
  std::cout << "shape check: harary_rounds ~ n/k; lhg_rounds ~ 2*log_{k-1}(n); "
               "message counts comparable (~= 2m - n + 1); incomplete == 0 "
               "everywhere\n";

  // --- Observability overhead gate (DESIGN.md §12) ---------------------
  // The same flood workload timed with obs fully disabled and with
  // metrics + trace recording on.  The obs=off row is the one
  // bench_compare.py gates against baseline.json — it must not move
  // when the instrumentation is compiled in but switched off; the
  // obs=on row quantifies the cost of actually watching and carries the
  // merged metrics document in the JSON report.
  {
    const std::int32_t k = 4;
    const core::NodeId n = opts.small ? 1024 : 4096;
    const int obs_trials = trials * 4;
    const auto g = build(n, k);
    const auto obs_sweep = [&](bool watch) {
      const flooding::TrialRunner runner{.seed = 97};
      obs::Snapshot merged;
      const bench::WallTimer timer;
      const Agg agg = runner.run<Agg>(
          obs_trials, Agg{},
          [&](std::int64_t t, core::Rng& rng) {
            flooding::FloodConfig cfg;
            cfg.source = static_cast<core::NodeId>(
                t % static_cast<std::int64_t>(g.num_nodes()));
            cfg.seed = rng();
            if (watch) cfg.obs = {.metrics = true, .trace = true};
            const auto result = flood(g, cfg);
            Agg one;
            one.events = result.events_processed;
            one.messages = result.messages_sent;
            one.incomplete = result.all_alive_delivered() ? 0 : 1;
            return one;
          },
          Agg::merge);
      if (watch) {
        // The metrics document comes from an untimed serial pass of the
        // same workload shape: per-trial snapshots share one schema, so
        // merge_from aggregates them element-wise and deterministically,
        // and snapshotting cost never leaks into the timed wall_ns.
        for (std::int64_t t = 0; t < obs_trials; ++t) {
          core::Rng rng(97 + static_cast<std::uint64_t>(t));
          flooding::FloodConfig cfg;
          cfg.source = static_cast<core::NodeId>(
              t % static_cast<std::int64_t>(g.num_nodes()));
          cfg.seed = rng();
          cfg.obs = {.metrics = true, .trace = false};
          merged.merge_from(flood(g, cfg).metrics);
        }
      }
      report.add(std::string("flood/obs=") + (watch ? "on" : "off") +
                     "/k=" + std::to_string(k) + "/n=" + std::to_string(n),
                 {{"topo", "lhg"},
                  {"k", k},
                  {"n", n},
                  {"trials", obs_trials},
                  {"events", agg.events},
                  {"obs", watch ? 1 : 0}},
                 timer.elapsed_ns(),
                 watch ? merged.to_json() : std::string{});
      return timer.elapsed_ns();
    };
    const std::int64_t off_ns = obs_sweep(false);
    const std::int64_t on_ns = obs_sweep(true);
    std::cout << "\nobs overhead: off=" << off_ns / 1000000 << "ms on="
              << on_ns / 1000000 << "ms ("
              << 100.0 * (static_cast<double>(on_ns - off_ns) /
                          static_cast<double>(off_ns))
              << "% when recording; disabled-obs row is the gated one)\n";
  }

  // --- Trace export (--trace): one instrumented flood, Chrome JSON ----
  if (!opts.trace_path.empty()) {
    const core::NodeId n = opts.small ? 256 : 1024;
    flooding::FloodConfig cfg;
    cfg.seed = 7;
    cfg.obs = {.metrics = true, .trace = true, .trace_capacity = 1 << 16};
    const auto result = flood(build(n, 4), cfg);
    if (!obs::write_chrome_trace(opts.trace_path, result.trace)) return 1;
    std::cout << "wrote " << result.trace.events.size()
              << " trace events (dropped " << result.trace.dropped << ") to "
              << opts.trace_path << '\n';
  }

  return opts.finish(report);
}
