// E4 — "flooding latency, failure-free" figure.
//
// Claim: a flood over an LHG completes in O(log n) hop-rounds while the
// same protocol over the circulant Harary graph needs Θ(n/k) rounds; a
// degree-matched random regular graph sits near the LHG (random graphs
// have logarithmic diameter w.h.p. but no deterministic guarantee).
//
// Expected shape: the harary column grows linearly in n; lhg and
// random-k-regular grow by an additive constant per doubling, with lhg
// deterministic (identical across seeds) and random varying slightly.

#include <iostream>

#include "core/random_graphs.h"
#include "flooding/protocols.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;
  using flooding::flood;

  std::cout << "E4: failure-free flood completion (hop-rounds), source 0\n";
  bench::Table table({"k", "n", "lhg_rounds", "harary_rounds", "randreg_rounds",
                      "lhg_msgs", "harary_msgs"},
                     15);
  table.print_header();

  for (const std::int32_t k : {3, 4, 6}) {
    for (core::NodeId n = 64; n <= 8192; n *= 2) {
      const auto lhg_graph = build(n, k);
      const auto harary_graph = harary::circulant(n, k);
      core::Rng rng(static_cast<std::uint64_t>(n) * 31 +
                    static_cast<std::uint64_t>(k));
      const auto random_graph =
          (static_cast<std::int64_t>(n) * k) % 2 == 0
              ? core::random_regular_connected(n, k, rng)
              : core::random_regular_connected(n + 1, k, rng);

      const auto lhg_result = flood(lhg_graph, {.source = 0});
      const auto harary_result = flood(harary_graph, {.source = 0});
      const auto random_result = flood(random_graph, {.source = 0});

      table.print_row(k, n, lhg_result.completion_hops,
                      harary_result.completion_hops,
                      random_result.completion_hops,
                      lhg_result.messages_sent, harary_result.messages_sent);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: harary_rounds ~ n/k; lhg_rounds ~ 2*log_{k-1}(n); "
               "message counts comparable (~= 2m - n + 1)\n";
  return 0;
}
