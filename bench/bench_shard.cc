// E25 — sharded deterministic flood: parity and scaling.
//
// Claim: flooding::ShardedSimulator (shard_sim.h) runs one large flood
// partitioned over S calendar queues on core::parallel lanes,
// bit-identical to the single-queue engine, and >= 3x faster at S=8 on
// an 8-way host for the n=65536 LHG(k=4) flood.
//
// Per n (65536; the full run adds 10^6), against the storage-free
// ImplicitLhg view:
//   flood_single   the PR-3 single-queue engine (cfg.shards = 1)
//   flood_sharded  the sharded engine at S in {1, 4, 8}
//
// Every sharded run is compared field-for-field against the
// single-queue result — delivery vectors, message/event counts and
// NetworkStats must be bit-equal (fixed latency, no chaos; DESIGN.md
// §17).  The comparison is a hard LHG_CHECK: a wrong sharded engine
// must fail the CI job here, not publish wrong timings.  The >= 3x
// speedup check arms only on hosts with >= 8 hardware threads AND
// LHG_THREADS >= 8 — below that, S=8 lanes measure oversubscription,
// not the engine.
//
// Every row carries peak_rss_bytes; CI gates the --small rows against
// bench/memory_budget.json, so a sharded engine that quietly clones
// per-shard copies of shared network state blows the cap even when
// wall time stays green.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "flooding/flood_generic.h"
#include "lhg/implicit.h"
#include "report.h"
#include "table.h"

namespace {

using lhg::flooding::DisseminationResult;

double mb(std::int64_t bytes) {
  return bytes < 0 ? 0.0 : static_cast<double>(bytes) / 1e6;
}

double mev_per_s(std::int64_t events, std::int64_t wall_ns) {
  return wall_ns <= 0 ? 0.0
                      : static_cast<double>(events) * 1e3 /
                            static_cast<double>(wall_ns);
}

/// Field-for-field equality of a sharded run against the single-queue
/// reference.  Chaos-free fixed-latency floods are specified bit-equal
/// (shard_net.h), so any divergence is an engine bug.
void check_parity(const DisseminationResult& single,
                  const DisseminationResult& sharded, std::int64_t n,
                  std::int32_t shards) {
  LHG_CHECK(single.delivery_time == sharded.delivery_time &&
                single.delivery_hops == sharded.delivery_hops,
            "sharded flood delivery vectors diverge at n={} S={}", n, shards);
  LHG_CHECK(single.messages_sent == sharded.messages_sent &&
                single.events_processed == sharded.events_processed,
            "sharded flood event counts diverge at n={} S={}: "
            "msgs {} vs {}, events {} vs {}",
            n, shards, single.messages_sent, sharded.messages_sent,
            single.events_processed, sharded.events_processed);
  LHG_CHECK(single.completion_time == sharded.completion_time &&
                single.completion_hops == sharded.completion_hops &&
                single.alive_nodes == sharded.alive_nodes &&
                single.delivered_alive == sharded.delivered_alive,
            "sharded flood completion diverges at n={} S={}", n, shards);
  LHG_CHECK(
      single.net.sent == sharded.net.sent &&
          single.net.delivered == sharded.net.delivered &&
          single.net.lost == sharded.net.lost &&
          single.net.duplicated == sharded.net.duplicated &&
          single.net.blocked_sender_crashed ==
              sharded.net.blocked_sender_crashed &&
          single.net.blocked_link_down == sharded.net.blocked_link_down &&
          single.net.blocked_partition == sharded.net.blocked_partition &&
          single.net.dropped_receiver_crashed ==
              sharded.net.dropped_receiver_crashed &&
          single.net.dropped_link_down == sharded.net.dropped_link_down &&
          single.net.dropped_partition == sharded.net.dropped_partition,
      "sharded flood NetworkStats diverge at n={} S={}", n, shards);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_shard");

  constexpr std::int32_t k = 4;
  const std::int32_t shard_counts[] = {1, 4, 8};
  const bool speedup_armed =
      std::thread::hardware_concurrency() >= 8 &&
      core::global_thread_count() >= 8;

  std::cout << "E25: sharded vs single-queue flood over ImplicitLhg (k=" << k
            << ", fixed latency, hard parity check per row)  [threads="
            << core::global_thread_count()
            << ", speedup gate " << (speedup_armed ? "armed" : "off") << "]\n";
  bench::Table table(
      {"n", "engine", "shards", "ms", "Mev/s", "peak_rss_mb", "speedup"}, 13);
  table.print_header();

  std::vector<std::int64_t> sizes = {65'536};
  if (!opts.small) sizes.push_back(1'000'000);

  for (const std::int64_t n : sizes) {
    const ImplicitLhg view(n, k);
    flooding::FloodConfig cfg;
    cfg.source = 0;
    cfg.seed = 25;

    const bench::WallTimer single_timer;
    const auto single = flooding::flood(view, cfg);
    const std::int64_t single_ns = single_timer.elapsed_ns();
    LHG_CHECK(single.all_alive_delivered(),
              "single-queue flood missed nodes at n={}", n);
    table.print_row(n, "single", 1, static_cast<double>(single_ns) / 1e6,
                    mev_per_s(single.events_processed, single_ns),
                    mb(bench::BenchReport::peak_rss_bytes()), "1.00");
    report.add("flood_single/k=" + std::to_string(k) +
                   "/n=" + std::to_string(n),
               {{"k", k},
                {"n", n},
                {"messages", single.messages_sent},
                {"events", single.events_processed}},
               single_ns);

    std::int64_t s8_ns = -1;
    for (const std::int32_t shards : shard_counts) {
      cfg.shards = shards;
      const bench::WallTimer timer;
      const auto sharded = flooding::flood(view, cfg);
      const std::int64_t wall_ns = timer.elapsed_ns();
      check_parity(single, sharded, n, shards);
      if (shards == 8) s8_ns = wall_ns;
      const double speedup =
          static_cast<double>(single_ns) / static_cast<double>(wall_ns);
      std::ostringstream sp;
      sp << std::fixed << std::setprecision(2) << speedup;
      table.print_row(n, "sharded", shards,
                      static_cast<double>(wall_ns) / 1e6,
                      mev_per_s(sharded.events_processed, wall_ns),
                      mb(bench::BenchReport::peak_rss_bytes()), sp.str());
      report.add("flood_sharded/k=" + std::to_string(k) +
                     "/n=" + std::to_string(n) + "/s=" + std::to_string(shards),
                 {{"k", k},
                  {"n", n},
                  {"shards", shards},
                  {"messages", sharded.messages_sent},
                  {"events", sharded.events_processed}},
                 wall_ns);
    }

    // The acceptance gate: >= 3x at S=8 on the n=65536 flood, armed
    // only where 8 lanes have 8 hardware threads to land on.
    if (speedup_armed && n == 65'536) {
      LHG_CHECK(s8_ns > 0 && single_ns >= 3 * s8_ns,
                "sharded flood at S=8 is not >=3x the single queue at "
                "n={}: {} ns vs {} ns",
                n, s8_ns, single_ns);
    }
  }

  std::cout << "\nshape check: sharded rows match the single-queue row "
               "bit-for-bit (enforced above); Mev/s scales with lanes "
               "until cross-shard exchange dominates.\n";
  return opts.finish(report);
}
