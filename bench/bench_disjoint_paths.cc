// E19 (extension) — length of the k vertex-disjoint paths.
//
// The paper's connectivity proof (Menger witnesses) routes k disjoint
// paths between any pair through distinct descendant leaves and tree
// copies; the point is not just that k paths EXIST but that all of
// them stay O(log n) long — that is what bounds flooding latency even
// after k−1 failures knock out the short paths.
//
// This bench extracts maximum-flow certificates (k pairwise
// internally-disjoint paths) for sampled pairs and reports the longest
// path in each certificate, against the diameter and log2(n).  Flow
// certificates are not length-optimized, so this is an upper bound on
// what an adversary can force — and it still stays logarithmic.
//
// Expected shape: worst certificate path grows by an additive constant
// per doubling of n (like the diameter), nowhere near linear.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/connectivity.h"
#include "core/diameter.h"
#include "core/rng.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;
  using core::NodeId;

  std::cout << "E19: max path length within k-disjoint-path certificates "
               "(60 sampled pairs per row)\n";
  bench::Table table({"k", "n", "diameter", "log2(n)", "mean_longest",
                      "worst_longest"},
                     14);
  table.print_header();

  for (const std::int32_t k : {3, 5}) {
    for (const NodeId n : {64, 128, 256, 512, 1024}) {
      const auto size = static_cast<NodeId>(
          regular_exists(n, k) ? n
                               : n + (2 * (k - 1) - (n - 2 * k) % (2 * (k - 1))));
      const auto g = build(size, k);
      core::Rng rng(static_cast<std::uint64_t>(size) *
                    static_cast<std::uint64_t>(k));
      double total_longest = 0;
      std::int32_t worst_longest = 0;
      int measured = 0;
      for (int trial = 0; trial < 60; ++trial) {
        const auto s = static_cast<NodeId>(
            rng.next_below(static_cast<std::uint64_t>(size)));
        const auto t = static_cast<NodeId>(
            rng.next_below(static_cast<std::uint64_t>(size)));
        if (s == t) continue;
        const auto paths = core::vertex_disjoint_paths(g, s, t, k);
        if (!paths.has_value()) {
          std::cerr << "UNEXPECTED: fewer than k disjoint paths for (" << s
                    << ", " << t << ")\n";
          return 1;
        }
        std::int32_t longest = 0;
        for (const auto& path : *paths) {
          longest = std::max(longest,
                             static_cast<std::int32_t>(path.size()) - 1);
        }
        total_longest += longest;
        worst_longest = std::max(worst_longest, longest);
        ++measured;
      }
      table.print_row(k, size, core::diameter(g),
                      std::log2(static_cast<double>(size)),
                      total_longest / measured, worst_longest);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: worst_longest grows ~ +const per doubling "
               "(logarithmic), bounded by a small multiple of the diameter\n";
  return 0;
}
