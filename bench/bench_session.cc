// E14 (extension) — sustained broadcast load.
//
// One flood measures a single message; systems flood continuously.
// This bench runs M concurrent broadcasts from random sources over one
// simulated network and confirms the defining property of
// deterministic flooding: no interference — aggregate cost is exactly
// M × (single-flood cost) and every broadcast still completes within
// its own diameter bound, even with f = k−1 crashes mid-session.
//
// Expected shape: msgs/broadcast constant in M; complete% = 100;
// makespan ~ last start + diameter.
//
// Each (M, f) cell repeats the session with independent source draws,
// fanned across core::parallel by flooding::TrialRunner.

#include <iostream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "flooding/session.h"
#include "flooding/trial_runner.h"
#include "lhg/lhg.h"
#include "report.h"
#include "table.h"

namespace {

struct Agg {
  double complete = 0;
  double msgs = 0;
  double makespan = 0;

  static Agg merge(Agg a, const Agg& b) {
    a.complete += b.complete;
    a.msgs += b.msgs;
    a.makespan = std::max(a.makespan, b.makespan);
    return a;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using namespace lhg::flooding;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_session");

  const int trials = opts.small ? 4 : 8;
  const std::int32_t k = 4;
  const core::NodeId n = 302;
  const auto g = build(n, k);
  const auto single = flood(g, {.source = 0});

  std::cout << "E14: concurrent broadcasts over one (" << n << ", " << k
            << ") overlay; single-flood cost = " << single.messages_sent
            << " msgs, " << trials << " sessions per cell  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"broadcasts", "failures", "complete%", "msgs/bcast",
                      "makespan", "interference"},
                     13);
  table.print_header();

  for (const int broadcasts : {1, 4, 16, 64}) {
    for (const std::int32_t f : {0, k - 1}) {
      const TrialRunner runner{
          .seed = static_cast<std::uint64_t>(broadcasts) * 257 +
                  static_cast<std::uint64_t>(f)};
      const bench::WallTimer timer;
      const Agg agg = runner.run<Agg>(
          trials, Agg{},
          [&](std::int64_t, core::Rng& rng) {
            std::vector<BroadcastSpec> specs;
            for (int b = 0; b < broadcasts; ++b) {
              specs.push_back(
                  {static_cast<core::NodeId>(rng.next_below(
                       static_cast<std::uint64_t>(n))),
                   static_cast<double>(b % 8)});  // staggered waves
            }
            FailurePlan plan;
            if (f > 0) {
              // Crash mid-session so early and late broadcasts see
              // different memberships; a crashed source is incomplete
              // by definition, so keep sources out of the crash set.
              std::vector<bool> is_source(static_cast<std::size_t>(n), false);
              for (const auto& spec : specs) {
                is_source[static_cast<std::size_t>(spec.source)] = true;
              }
              while (static_cast<std::int32_t>(plan.crashes.size()) < f) {
                const auto victim = static_cast<core::NodeId>(
                    rng.next_below(static_cast<std::uint64_t>(n)));
                if (!is_source[static_cast<std::size_t>(victim)]) {
                  plan.crashes.push_back({victim, 3.0});
                  is_source[static_cast<std::size_t>(victim)] = true;  // dedup
                }
              }
            }
            const auto session =
                run_broadcast_session(g, specs, {.seed = rng()}, plan);
            Agg one;
            one.complete = session.complete_fraction();
            one.msgs = static_cast<double>(session.total_messages_sent) /
                       broadcasts;
            one.makespan = session.makespan;
            return one;
          },
          Agg::merge);
      const std::int64_t wall_ns = timer.elapsed_ns();
      report.add("session/broadcasts=" + std::to_string(broadcasts) +
                     "/f=" + std::to_string(f),
                 {{"broadcasts", broadcasts}, {"f", f}, {"trials", trials}},
                 wall_ns);
      const double per_broadcast = agg.msgs / trials;
      table.print_row(
          broadcasts, f, 100.0 * agg.complete / trials, per_broadcast,
          agg.makespan,
          per_broadcast / static_cast<double>(single.messages_sent));
    }
  }
  std::cout << "\nshape check: interference ~ 1.00 regardless of M; "
               "complete% == 100\n";
  return opts.finish(report);
}
