// E14 (extension) — sustained broadcast load.
//
// One flood measures a single message; systems flood continuously.
// This bench runs M concurrent broadcasts from random sources over one
// simulated network and confirms the defining property of
// deterministic flooding: no interference — aggregate cost is exactly
// M × (single-flood cost) and every broadcast still completes within
// its own diameter bound, even with f = k−1 crashes mid-session.
//
// Expected shape: msgs/broadcast constant in M; complete% = 100;
// makespan ~ last start + diameter.

#include <iostream>

#include "core/rng.h"
#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "flooding/session.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;
  using namespace lhg::flooding;

  const std::int32_t k = 4;
  const core::NodeId n = 302;
  const auto g = build(n, k);
  const auto single = flood(g, {.source = 0});

  std::cout << "E14: concurrent broadcasts over one (" << n << ", " << k
            << ") overlay; single-flood cost = " << single.messages_sent
            << " msgs\n";
  bench::Table table({"broadcasts", "failures", "complete%", "msgs/bcast",
                      "makespan", "interference"},
                     13);
  table.print_header();

  core::Rng rng(17);
  for (const int broadcasts : {1, 4, 16, 64}) {
    for (const std::int32_t f : {0, k - 1}) {
      std::vector<BroadcastSpec> specs;
      for (int b = 0; b < broadcasts; ++b) {
        specs.push_back(
            {static_cast<core::NodeId>(rng.next_below(
                 static_cast<std::uint64_t>(n))),
             static_cast<double>(b % 8)});  // staggered waves
      }
      FailurePlan plan;
      if (f > 0) {
        // Crash mid-session so early and late broadcasts see different
        // memberships; protect all sources crudely by protecting id 0
        // and resampling sources to nonzero ids is unnecessary — a
        // crashed source is reported as incomplete by definition, so
        // exclude sources from the crash set.
        core::Rng crash_rng(99);
        std::vector<bool> is_source(static_cast<std::size_t>(n), false);
        for (const auto& spec : specs) {
          is_source[static_cast<std::size_t>(spec.source)] = true;
        }
        while (static_cast<std::int32_t>(plan.crashes.size()) < f) {
          const auto victim = static_cast<core::NodeId>(
              crash_rng.next_below(static_cast<std::uint64_t>(n)));
          if (!is_source[static_cast<std::size_t>(victim)]) {
            plan.crashes.push_back({victim, 3.0});
            is_source[static_cast<std::size_t>(victim)] = true;  // dedup
          }
        }
      }
      const auto session = run_broadcast_session(g, specs, {.seed = 5}, plan);
      const double per_broadcast =
          static_cast<double>(session.total_messages_sent) / broadcasts;
      table.print_row(
          broadcasts, f, 100.0 * session.complete_fraction(), per_broadcast,
          session.makespan,
          per_broadcast / static_cast<double>(single.messages_sent));
    }
  }
  std::cout << "\nshape check: interference ~ 1.00 regardless of M; "
               "complete% == 100\n";
  return 0;
}
