// E5 — "flooding latency under failures" figure.
//
// Claim: with any f <= k−1 fail-stop crashes the flood over a
// k-connected LHG still reaches every live node, and its latency
// degrades by at most a few hops; the Harary baseline also survives but
// its (already linear) latency grows with f.
//
// Method: for each f we run 100 random crash patterns plus one
// adversarial pattern aimed at a minimum vertex cut, and report the
// delivery ratio (must stay 1.0 up to f = k−1) and the mean/max
// completion rounds.
//
// Trials are independent and run in parallel: trial t derives its crash
// pattern from Rng::stream(seed, t), so every aggregate below is
// identical at every thread count.

#include <algorithm>
#include <iostream>

#include "core/parallel.h"
#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

namespace {

struct Aggregate {
  double total_rounds = 0;
  double mean_rounds = 0;
  std::int32_t max_rounds = 0;
  double min_delivery = 1.0;
  std::int32_t incomplete = 0;
  double net_sent = 0;
  double net_lost = 0;

  static Aggregate merge(Aggregate a, const Aggregate& b) {
    a.total_rounds += b.total_rounds;
    a.max_rounds = std::max(a.max_rounds, b.max_rounds);
    a.min_delivery = std::min(a.min_delivery, b.min_delivery);
    a.incomplete += b.incomplete;
    a.net_sent += b.net_sent;
    a.net_lost += b.net_lost;
    return a;
  }
};

Aggregate sweep(const lhg::core::Graph& g, std::int32_t f, int trials,
                std::uint64_t seed, const lhg::flooding::ChaosSpec& chaos) {
  using namespace lhg::flooding;
  Aggregate agg = lhg::core::parallel_reduce<Aggregate>(
      trials, 4, Aggregate{},
      [&](std::int64_t begin, std::int64_t end, int) {
        Aggregate chunk;
        for (std::int64_t t = begin; t < end; ++t) {
          auto rng =
              lhg::core::Rng::stream(seed, static_cast<std::uint64_t>(t));
          const auto plan = (t == 0 && f > 0)
                                ? cut_targeted_crashes(g, f, 0, rng, /*time=*/0.0)
                                : random_crashes(g, f, 0, rng, /*time=*/0.0);
          const auto result =
              flood(g, {.source = 0, .seed = rng(), .chaos = chaos}, plan);
          chunk.total_rounds += result.completion_hops;
          chunk.max_rounds = std::max(chunk.max_rounds, result.completion_hops);
          chunk.min_delivery =
              std::min(chunk.min_delivery, result.delivery_ratio());
          chunk.incomplete += result.all_alive_delivered() ? 0 : 1;
          chunk.net_sent += static_cast<double>(result.net.sent);
          chunk.net_lost += static_cast<double>(result.net.lost);
        }
        return chunk;
      },
      Aggregate::merge);
  agg.mean_rounds = agg.total_rounds / trials;
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_flood_failures");

  const int trials = opts.small ? 25 : 100;
  std::cout << "E5: flood under f crashes (" << trials
            << " random + 1 cut-adversarial patterns per row)  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"topology", "k", "n", "f", "mean_rounds", "max_rounds",
                      "min_deliv", "incomplete"},
                     12);
  table.print_header();

  const auto measure = [&](const char* topo, const core::Graph& g,
                           std::int32_t k, core::NodeId n, std::int32_t f,
                           std::uint64_t seed,
                           const flooding::ChaosSpec& chaos) {
    const bench::WallTimer timer;
    const auto agg = sweep(g, f, trials, seed, chaos);
    table.print_row(topo, k, n, f, agg.mean_rounds, agg.max_rounds,
                    agg.min_delivery, agg.incomplete);
    report.add(std::string("flood/topo=") + topo + "/k=" + std::to_string(k) +
                   "/f=" + std::to_string(f),
               {{"topo", topo}, {"k", k}, {"n", n}, {"f", f},
                {"mean_rounds", agg.mean_rounds},
                {"incomplete", agg.incomplete},
                {"net_sent", agg.net_sent / trials},
                {"net_lost", agg.net_lost / trials}},
               timer.elapsed_ns());
  };

  const auto none = flooding::ChaosSpec::none();
  for (const std::int32_t k : {3, 5}) {
    const core::NodeId n = 2 * k + 2 * 60 * (k - 1);  // regular lattice size
    const auto lhg_graph = build(n, k);
    const auto harary_graph = harary::circulant(n, k);
    for (std::int32_t f = 0; f < k; ++f) {
      measure("lhg", lhg_graph, k, n, f, static_cast<std::uint64_t>(1000 + f),
              none);
    }
    for (std::int32_t f = 0; f < k; ++f) {
      measure("harary", harary_graph, k, n, f,
              static_cast<std::uint64_t>(2000 + f), none);
    }
    // Crashes composed with 10% i.i.d. loss: the disjoint-path
    // redundancy that absorbs f <= k-1 crashes is no shield once the
    // channel itself drops copies — delivery visibly dips, motivating
    // the ack/retry layer (bench_lossy).
    for (std::int32_t f = 0; f < k; ++f) {
      measure("lhg_lossy", lhg_graph, k, n, f,
              static_cast<std::uint64_t>(1500 + f),
              flooding::ChaosSpec::iid(0.1));
    }
    std::cout << '\n';
  }
  std::cout << "shape check: on lossless rows incomplete == 0 and min_deliv "
               "== 1.0 for all f <= k-1 (lhg mean_rounds ~ log n vs harary "
               "~ n/k); lhg_lossy rows dip below 1.0\n";
  return opts.finish(report);
}
