// E5 — "flooding latency under failures" figure.
//
// Claim: with any f <= k−1 fail-stop crashes the flood over a
// k-connected LHG still reaches every live node, and its latency
// degrades by at most a few hops; the Harary baseline also survives but
// its (already linear) latency grows with f.
//
// Method: for each f we run 100 random crash patterns plus one
// adversarial pattern aimed at a minimum vertex cut, and report the
// delivery ratio (must stay 1.0 up to f = k−1) and the mean/max
// completion rounds.

#include <algorithm>
#include <iostream>

#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

namespace {

struct Aggregate {
  double mean_rounds = 0;
  std::int32_t max_rounds = 0;
  double min_delivery = 1.0;
  std::int32_t incomplete = 0;
};

Aggregate sweep(const lhg::core::Graph& g, std::int32_t f, int trials,
                std::uint64_t seed) {
  using namespace lhg::flooding;
  Aggregate agg;
  lhg::core::Rng rng(seed);
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    const auto plan = (t == 0 && f > 0)
                          ? cut_targeted_crashes(g, f, 0, rng)
                          : random_crashes(g, f, 0, rng);
    const auto result = flood(g, {.source = 0}, plan);
    total += result.completion_hops;
    agg.max_rounds = std::max(agg.max_rounds, result.completion_hops);
    agg.min_delivery = std::min(agg.min_delivery, result.delivery_ratio());
    agg.incomplete += result.all_alive_delivered() ? 0 : 1;
  }
  agg.mean_rounds = total / trials;
  return agg;
}

}  // namespace

int main() {
  using namespace lhg;

  constexpr int kTrials = 100;
  std::cout << "E5: flood under f crashes (100 random + 1 cut-adversarial "
               "patterns per row)\n";
  bench::Table table({"topology", "k", "n", "f", "mean_rounds", "max_rounds",
                      "min_deliv", "incomplete"},
                     12);
  table.print_header();

  for (const std::int32_t k : {3, 5}) {
    const core::NodeId n = 2 * k + 2 * 60 * (k - 1);  // regular lattice size
    const auto lhg_graph = build(n, k);
    const auto harary_graph = harary::circulant(n, k);
    for (std::int32_t f = 0; f < k; ++f) {
      const auto lhg_agg =
          sweep(lhg_graph, f, kTrials, static_cast<std::uint64_t>(1000 + f));
      table.print_row("lhg", k, n, f, lhg_agg.mean_rounds, lhg_agg.max_rounds,
                      lhg_agg.min_delivery, lhg_agg.incomplete);
    }
    for (std::int32_t f = 0; f < k; ++f) {
      const auto harary_agg = sweep(harary_graph, f, kTrials,
                                    static_cast<std::uint64_t>(2000 + f));
      table.print_row("harary", k, n, f, harary_agg.mean_rounds,
                      harary_agg.max_rounds, harary_agg.min_delivery,
                      harary_agg.incomplete);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: incomplete == 0 and min_deliv == 1.0 for all "
               "f <= k-1; lhg mean_rounds ~ log n vs harary ~ n/k\n";
  return 0;
}
