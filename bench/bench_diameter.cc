// E1 — "diameter" figure.
//
// Claim: the circulant Harary graph H(k,n) has Θ(n/k) diameter while the
// LHG keeps O(log n); the gap grows without bound.  This harness prints
// the exact diameters for n doubling from 32 to 16384 at several k,
// alongside the log2(n) reference and the Harary analytic prediction.
//
// Expected shape: the Harary column doubles with n; the LHG column grows
// by ~log(k-1) steps per doubling; crossover is immediate (n >= 4k).

#include <cmath>
#include <iostream>

#include "core/diameter.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;

  std::cout << "E1: exact diameter (and mean path length), LHG vs classic "
               "Harary H(k,n)\n";
  bench::Table table({"k", "n", "lhg_diam", "harary_diam", "log2(n)",
                      "harary_pred", "ratio", "lhg_apl", "harary_apl"},
                     12);
  table.print_header();

  // Average path length costs an all-pairs BFS; cap it at 2048 nodes.
  constexpr core::NodeId kAplLimit = 2048;
  for (const std::int32_t k : {3, 4, 6, 8}) {
    for (core::NodeId n = 32; n <= 16384; n *= 2) {
      if (n < 2 * k) continue;
      const auto lhg_graph = build(n, k);
      const auto harary_graph = harary::circulant(n, k);
      const auto lhg_diam = core::diameter(lhg_graph);
      const auto harary_diam = core::diameter(harary_graph);
      const bool apl = n <= kAplLimit;
      table.print_row(k, n, lhg_diam, harary_diam,
                      std::log2(static_cast<double>(n)),
                      harary::predicted_diameter(n, k),
                      static_cast<double>(harary_diam) /
                          static_cast<double>(lhg_diam),
                      apl ? core::average_path_length(lhg_graph) : -1.0,
                      apl ? core::average_path_length(harary_graph) : -1.0);
    }
    std::cout << '\n';
  }
  std::cout << "shape check: harary_diam ~ n/k (doubles with n); "
               "lhg_diam ~ 2*log_{k-1}(n) (adds a constant per doubling); "
               "mean path lengths follow the same regimes (-1 = skipped)\n";
  return 0;
}
