// E1 — "diameter" figure.
//
// Claim: the circulant Harary graph H(k,n) has Θ(n/k) diameter while the
// LHG keeps O(log n); the gap grows without bound.  This harness prints
// the exact diameters for n doubling from 32 to 16384 at several k,
// alongside the log2(n) reference and the Harary analytic prediction.
//
// Expected shape: the Harary column doubles with n; the LHG column grows
// by ~log(k-1) steps per doubling; crossover is immediate (n >= 4k).
//
// Wall-clock for each exact-diameter call is recorded and, with
// `--json <path>`, exported for the CI perf gate.  The diameter kernel
// is parallel (LHG_THREADS / core/parallel.h); values are identical at
// every thread count, only the wall columns change.

#include <cmath>
#include <iostream>

#include "core/diameter.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

int main(int argc, char** argv) {
  using namespace lhg;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_diameter");

  std::cout << "E1: exact diameter (and mean path length), LHG vs classic "
               "Harary H(k,n)  [threads=" << core::global_thread_count()
            << "]\n";
  bench::Table table({"k", "n", "lhg_diam", "harary_diam", "log2(n)",
                      "harary_pred", "ratio", "lhg_ms", "harary_ms"},
                     12);
  table.print_header();

  const core::NodeId max_n = opts.small ? 1024 : 16384;
  // Average path length costs an all-pairs BFS; cap it at 2048 nodes.
  const core::NodeId apl_limit = opts.small ? 256 : 2048;
  for (const std::int32_t k : {3, 4, 6, 8}) {
    for (core::NodeId n = 32; n <= max_n; n *= 2) {
      if (n < 2 * k) continue;
      const auto lhg_graph = build(n, k);
      const auto harary_graph = harary::circulant(n, k);

      const bench::WallTimer lhg_timer;
      const auto lhg_diam = core::diameter(lhg_graph);
      const auto lhg_ns = lhg_timer.elapsed_ns();

      const bench::WallTimer harary_timer;
      const auto harary_diam = core::diameter(harary_graph);
      const auto harary_ns = harary_timer.elapsed_ns();

      table.print_row(k, n, lhg_diam, harary_diam,
                      std::log2(static_cast<double>(n)),
                      harary::predicted_diameter(n, k),
                      static_cast<double>(harary_diam) /
                          static_cast<double>(lhg_diam),
                      static_cast<double>(lhg_ns) / 1e6,
                      static_cast<double>(harary_ns) / 1e6);
      report.add("diameter/topo=lhg/k=" + std::to_string(k) +
                     "/n=" + std::to_string(n),
                 {{"topo", "lhg"}, {"k", k}, {"n", n}, {"diam", lhg_diam}},
                 lhg_ns);
      report.add("diameter/topo=harary/k=" + std::to_string(k) +
                     "/n=" + std::to_string(n),
                 {{"topo", "harary"},
                  {"k", k},
                  {"n", n},
                  {"diam", harary_diam}},
                 harary_ns);

      if (n <= apl_limit) {
        const bench::WallTimer apl_timer;
        const double lhg_apl = core::average_path_length(lhg_graph);
        report.add("apl/topo=lhg/k=" + std::to_string(k) +
                       "/n=" + std::to_string(n),
                   {{"topo", "lhg"}, {"k", k}, {"n", n}, {"apl", lhg_apl}},
                   apl_timer.elapsed_ns());
      }
    }
    std::cout << '\n';
  }
  std::cout << "shape check: harary_diam ~ n/k (doubles with n); "
               "lhg_diam ~ 2*log_{k-1}(n) (adds a constant per doubling)\n";
  return opts.finish(report);
}
