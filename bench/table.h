// Tiny fixed-width table printer shared by the benchmark harnesses, so
// every experiment binary emits the same aligned, grep-friendly rows
// that EXPERIMENTS.md quotes.
//
// Machine-readable output rides along: report.h (re-exported here)
// provides BenchReport/BenchOptions, so any bench that includes table.h
// can accept `--json <path>` and emit a BENCH_<name>.json document for
// CI's bench-smoke gate (scripts/bench_compare.py).

#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report.h"

namespace lhg::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int column_width = 12)
      : headers_(std::move(headers)), width_(column_width) {}

  void print_header(std::ostream& out = std::cout) const {
    for (const auto& h : headers_) out << std::setw(width_) << h;
    out << '\n';
    out << std::string(headers_.size() * static_cast<std::size_t>(width_), '-')
        << '\n';
  }

  template <typename... Cells>
  void print_row(Cells&&... cells) const {
    std::ostream& out = std::cout;
    ((out << std::setw(width_) << format_cell(std::forward<Cells>(cells))),
     ...);
    out << '\n';
  }

 private:
  static std::string format_cell(double value) {
    std::ostringstream s;
    s << std::fixed << std::setprecision(2) << value;
    return s.str();
  }
  static std::string format_cell(const char* value) { return value; }
  static std::string format_cell(const std::string& value) { return value; }
  template <typename T>
  static std::string format_cell(T value) {
    std::ostringstream s;
    s << value;
    return s.str();
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void section(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

}  // namespace lhg::bench
