// E11 — membership churn cost: rebuild-and-diff vs incremental.
//
// How much of the overlay must be rewired when one node joins or
// leaves?  Two protocols answer differently:
//
//   * rebuild  — membership::Overlay recomputes the canonical topology
//     for the new n and rewires the labeled edge-set difference; label
//     shifts at tree reshapes rewire whole subtrees (p95 spikes around
//     a thousand edges by n = 300 at k = 4);
//   * incremental — membership::IncrementalOverlay diffs the abstract
//     tree plans and relocates only dissolved-slot occupants, so a
//     non-reshaping join costs exactly k edges and a reshape boundary
//     O(k²), independent of n.
//
// The bench grows both protocols over the same trajectory, runs a
// steady-state join/leave mix at the final size, and re-runs the
// steady mix with the k-connectivity verifier invoked after every
// batch (the continuous-verification deployment posture).  Hard
// checks, enforced here rather than eyeballed: both protocols land on
// the identical canonical graph; incremental per-change cost is
// bounded by 3k² always and by 2·k·log₂ n once n ≥ 32; incremental
// p95 beats the rebuild p95 by ≥ 10×; the verifier stays green after
// every steady-state batch.
//
// Each constraint's trajectory is sequential by nature, but the
// trajectories are independent of each other, so they run as parallel
// trials under flooding::TrialRunner.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/connectivity.h"
#include "flooding/trial_runner.h"
#include "membership/incremental.h"
#include "membership/membership.h"
#include "report.h"
#include "table.h"

namespace {

struct Stats {
  std::int64_t count = 0;
  double mean = 0;
  std::int64_t median = 0;
  std::int64_t p95 = 0;
  std::int64_t max = 0;
};

Stats stats_of(std::vector<std::int64_t> costs) {
  Stats s;
  if (costs.empty()) return s;
  std::sort(costs.begin(), costs.end());
  s.count = static_cast<std::int64_t>(costs.size());
  for (const std::int64_t c : costs) s.mean += static_cast<double>(c);
  s.mean /= static_cast<double>(costs.size());
  s.median = costs[costs.size() / 2];
  s.p95 = costs[costs.size() * 95 / 100];
  s.max = costs.back();
  return s;
}

struct Row {
  lhg::Constraint constraint;
  std::string kind;  // "churn" (rebuild), "incremental", "steady", "verified"
  Stats stats;
  std::int64_t final_edges = 0;
  std::int64_t wall_ns = 0;
};

struct TrialOut {
  std::vector<Row> rows;
  std::vector<std::string> failures;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using membership::IncrementalOverlay;
  using membership::Overlay;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_churn");

  const std::int32_t k = 4;
  const std::int32_t target = opts.small ? 300 : 600;
  const std::int64_t kSquaredBound = 3LL * k * k;
  const std::int32_t steady_batches = opts.small ? 200 : 400;
  const std::int32_t verified_batches = opts.small ? 40 : 80;

  std::cout << "E11: edge rewires per membership change, k = " << k
            << ", growth to n = " << target << "  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"constraint", "protocol", "changes", "mean_churn",
                      "median", "p95", "max", "edges_final"},
                     12);
  table.print_header();

  const std::vector<Constraint> constraints = {Constraint::kKTree,
                                               Constraint::kKDiamond};
  const flooding::TrialRunner runner{.seed = 1};
  const auto out = runner.run<TrialOut>(
      static_cast<std::int64_t>(constraints.size()), {},
      [&](std::int64_t t, core::Rng& rng) {
        const auto constraint = constraints[static_cast<std::size_t>(t)];
        TrialOut res;
        auto fail = [&res](const std::string& msg) {
          res.failures.push_back(msg);
        };
        const std::string tag =
            std::string(to_string(constraint)) + " k=" + std::to_string(k);

        // --- Rebuild baseline: grow by recompute-and-diff.
        const bench::WallTimer rebuild_timer;
        Overlay overlay(2 * k, k, constraint);
        std::vector<std::int64_t> rebuild_costs;
        while (overlay.size() < target) {
          if (!overlay.can_grow()) {  // strict-JD gaps (not hit here)
            overlay.resize(overlay.size() + 2);
            continue;
          }
          rebuild_costs.push_back(overlay.add_node().total());
        }
        Row rebuild{constraint, "churn", stats_of(rebuild_costs),
                    overlay.graph().num_edges(), rebuild_timer.elapsed_ns()};
        res.rows.push_back(rebuild);

        // --- Incremental: same trajectory through plan deltas.
        const bench::WallTimer inc_timer;
        IncrementalOverlay inc(2 * k, k, constraint);
        std::vector<std::int64_t> inc_costs;
        while (inc.size() < target) {
          const auto before = inc.size();
          const auto delta =
              inc.can_grow() ? inc.join() : inc.apply_batch({}, 2);
          inc_costs.push_back(delta.total());
          if (!delta.incremental) {
            fail(tag + ": growth fell back to rebuild at n=" +
                 std::to_string(before));
          }
          if (before + 1 == inc.size() && delta.total() > kSquaredBound) {
            fail(tag + ": join at n=" + std::to_string(inc.size()) +
                 " cost " + std::to_string(delta.total()) + " > 3k^2");
          }
          if (inc.size() >= 32 &&
              static_cast<double>(delta.total()) >
                  2.0 * k * std::log2(static_cast<double>(inc.size()))) {
            fail(tag + ": join at n=" + std::to_string(inc.size()) +
                 " cost " + std::to_string(delta.total()) +
                 " > 2k*log2(n)");
          }
        }
        if (inc.canonical_graph() != overlay.graph()) {
          fail(tag + ": incremental and rebuild graphs diverged");
        }
        Row incr{constraint, "incremental", stats_of(inc_costs),
                 inc.canonical_graph().num_edges(), inc_timer.elapsed_ns()};
        res.rows.push_back(incr);

        // The headline claim: identity-stable deltas cut the p95
        // rewiring by at least an order of magnitude.
        if (rebuild.stats.p95 <
            10 * std::max<std::int64_t>(incr.stats.p95, 1)) {
          fail(tag + ": p95 reduction below 10x (rebuild " +
               std::to_string(rebuild.stats.p95) + ", incremental " +
               std::to_string(incr.stats.p95) + ")");
        }

        // --- Steady state: batched leave+join at constant n.
        const bench::WallTimer steady_timer;
        std::vector<std::int64_t> steady_costs;
        for (std::int32_t b = 0; b < steady_batches; ++b) {
          const auto members = inc.members();
          const membership::MemberId leavers[] = {
              members[rng.next_below(members.size())]};
          const auto delta = inc.apply_batch(leavers, 1);
          steady_costs.push_back(delta.total());
          if (delta.total() > 2 * kSquaredBound) {
            fail(tag + ": steady batch cost " +
                 std::to_string(delta.total()) + " > 6k^2");
          }
        }
        if (inc.rebuild_fallbacks() != 0) {
          fail(tag + ": steady churn hit the rebuild fallback");
        }
        Row steady{constraint, "steady", stats_of(steady_costs),
                   inc.canonical_graph().num_edges(),
                   steady_timer.elapsed_ns()};
        res.rows.push_back(steady);

        // --- Continuous verification: the steady mix with the
        // push-relabel k-connectivity verifier after every batch.
        const bench::WallTimer verified_timer;
        std::vector<std::int64_t> verified_costs;
        for (std::int32_t b = 0; b < verified_batches; ++b) {
          const auto members = inc.members();
          const membership::MemberId leavers[] = {
              members[rng.next_below(members.size())]};
          const auto delta = inc.apply_batch(leavers, 1);
          verified_costs.push_back(delta.total());
          const auto g = inc.member_graph();
          if (core::vertex_connectivity(g, k + 1) != k) {
            fail(tag + ": overlay not exactly k-connected after batch " +
                 std::to_string(b));
          }
        }
        Row verified{constraint, "verified", stats_of(verified_costs),
                     inc.canonical_graph().num_edges(),
                     verified_timer.elapsed_ns()};
        res.rows.push_back(verified);
        return res;
      },
      [](TrialOut a, const TrialOut& b) {
        a.rows.insert(a.rows.end(), b.rows.begin(), b.rows.end());
        a.failures.insert(a.failures.end(), b.failures.begin(),
                          b.failures.end());
        return a;
      });

  for (const Row& row : out.rows) {
    report.add(row.kind + "/constraint=" + to_string(row.constraint) +
                   "/n=" + std::to_string(target),
               {{"constraint", to_string(row.constraint)},
                {"protocol", row.kind},
                {"n", target},
                {"changes", row.stats.count}},
               row.wall_ns);
    table.print_row(to_string(row.constraint), row.kind, row.stats.count,
                    row.stats.mean, row.stats.median, row.stats.p95,
                    row.stats.max, row.final_edges);
  }

  std::cout << "\nshape check: incremental median stays exactly k and max "
               "O(k^2) at reshape boundaries; rebuild p95 is >= 10x "
               "larger; the verifier stays green under steady churn\n";
  if (!out.failures.empty()) {
    for (const std::string& f : out.failures) {
      std::cerr << "HARD CHECK FAILED: " << f << "\n";
    }
    return 1;
  }
  return opts.finish(report);
}
