// E11 (extension) — membership churn cost.
//
// How much of the overlay must be rewired when one node joins?  The
// managed overlay recomputes the constraint-conformant topology and
// rewires the edge-set difference; this bench measures that cost per
// join along a growth trajectory, for each constraint.
//
// Expected shape: churn per join is O(k) on most steps (a few leaf
// attachments move) but spikes when the tree gains an interior level —
// the price of keeping the diameter logarithmic and the degree uniform.
// K-DIAMOND shows smaller spikes than K-TREE (unshared groups absorb
// growth without reshaping the tree).
//
// Each constraint's growth trajectory is sequential by nature, but the
// trajectories are independent of each other, so they run as parallel
// trials under flooding::TrialRunner.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "flooding/trial_runner.h"
#include "membership/membership.h"
#include "report.h"
#include "table.h"

namespace {

struct Row {
  lhg::Constraint constraint;
  std::int64_t joins = 0;
  double mean = 0;
  std::int64_t median = 0;
  std::int64_t p95 = 0;
  std::int64_t max = 0;
  std::int32_t final_n = 0;
  std::int64_t final_edges = 0;
  std::int64_t wall_ns = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using membership::Overlay;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_churn");

  const std::int32_t k = 4;
  const std::int32_t target = opts.small ? 300 : 600;
  std::cout << "E11: edge rewires per single-node join, k = " << k
            << ", growth to n = " << target << "  [threads="
            << core::global_thread_count() << "]\n";
  bench::Table table({"constraint", "n_range", "joins", "mean_churn",
                      "median", "p95", "max", "edges_final"},
                     12);
  table.print_header();

  const std::vector<Constraint> constraints = {Constraint::kKTree,
                                               Constraint::kKDiamond};
  const flooding::TrialRunner runner{.seed = 1};
  const auto rows = runner.run<std::vector<Row>>(
      static_cast<std::int64_t>(constraints.size()), {},
      [&](std::int64_t t, core::Rng&) {
        const bench::WallTimer timer;
        const auto constraint = constraints[static_cast<std::size_t>(t)];
        Overlay overlay(2 * k, k, constraint);
        std::vector<std::int64_t> costs;
        while (overlay.size() < target) {
          if (!overlay.can_grow()) {  // strict-JD gaps (not hit here)
            overlay.resize(overlay.size() + 2);
            continue;
          }
          costs.push_back(overlay.add_node().total());
        }
        auto sorted = costs;
        std::sort(sorted.begin(), sorted.end());
        Row row;
        row.constraint = constraint;
        row.joins = static_cast<std::int64_t>(costs.size());
        for (auto c : costs) row.mean += static_cast<double>(c);
        row.mean /= static_cast<double>(costs.size());
        row.median = sorted[sorted.size() / 2];
        row.p95 = sorted[sorted.size() * 95 / 100];
        row.max = sorted.back();
        row.final_n = overlay.size();
        row.final_edges = overlay.graph().num_edges();
        row.wall_ns = timer.elapsed_ns();
        return std::vector<Row>{row};
      },
      [](std::vector<Row> a, const std::vector<Row>& b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
      });

  for (const Row& row : rows) {
    report.add(std::string("churn/constraint=") + to_string(row.constraint) +
                   "/n=" + std::to_string(target),
               {{"constraint", to_string(row.constraint)},
                {"n", target},
                {"joins", row.joins}},
               row.wall_ns);
    table.print_row(
        to_string(row.constraint),
        std::to_string(2 * k) + ".." + std::to_string(row.final_n),
        row.joins, row.mean, row.median, row.p95, row.max, row.final_edges);
  }
  std::cout << "\nshape check: median churn stays O(k); max spikes at "
               "tree-level boundaries; k-diamond spikes lower than k-tree\n";
  return opts.finish(report);
}
