// E11 (extension) — membership churn cost.
//
// How much of the overlay must be rewired when one node joins?  The
// managed overlay recomputes the constraint-conformant topology and
// rewires the edge-set difference; this bench measures that cost per
// join along a growth trajectory, for each constraint.
//
// Expected shape: churn per join is O(k) on most steps (a few leaf
// attachments move) but spikes when the tree gains an interior level —
// the price of keeping the diameter logarithmic and the degree uniform.
// K-DIAMOND shows smaller spikes than K-TREE (unshared groups absorb
// growth without reshaping the tree).

#include <algorithm>
#include <iostream>

#include "membership/membership.h"
#include "table.h"

int main() {
  using namespace lhg;
  using membership::Overlay;

  const std::int32_t k = 4;
  std::cout << "E11: edge rewires per single-node join, k = " << k << "\n";
  bench::Table table({"constraint", "n_range", "joins", "mean_churn",
                      "median", "p95", "max", "edges_final"},
                     12);
  table.print_header();

  for (const auto constraint :
       {Constraint::kKTree, Constraint::kKDiamond}) {
    Overlay overlay(2 * k, k, constraint);
    std::vector<std::int64_t> costs;
    while (overlay.size() < 600) {
      if (!overlay.can_grow()) {  // strict-JD gaps (not hit for these two)
        overlay.resize(overlay.size() + 2);
        continue;
      }
      costs.push_back(overlay.add_node().total());
    }
    auto sorted = costs;
    std::sort(sorted.begin(), sorted.end());
    double mean = 0;
    for (auto c : costs) mean += static_cast<double>(c);
    mean /= static_cast<double>(costs.size());
    table.print_row(
        to_string(constraint),
        std::to_string(2 * k) + ".." + std::to_string(overlay.size()),
        costs.size(), mean, sorted[sorted.size() / 2],
        sorted[sorted.size() * 95 / 100], sorted.back(),
        overlay.graph().num_edges());
  }
  std::cout << "\nshape check: median churn stays O(k); max spikes at "
               "tree-level boundaries; k-diamond spikes lower than k-tree\n";
  return 0;
}
