// E9 — "existence and regularity" table (extension ablation).
//
// Reproduces the characteristic-function analysis: for each k, sweep n
// and report which constraints can realize the pair (EX) and which can
// realize it k-regularly (REG).  Every predicate is cross-checked by
// actually building the graph and inspecting its degrees.
//
// Expected shape:
//   EX:  strict-jd has gaps just above 2k (e.g. (9,3)); k-tree and
//        k-diamond cover every n >= 2k.
//   REG: k-tree on n = 2k + 2a(k-1); k-diamond on n = 2k + a(k-1) —
//        exactly twice as many sizes (Theorem 7's separation).

#include <iostream>

#include "lhg/lhg.h"
#include "table.h"

int main() {
  using namespace lhg;

  std::cout << "E9: EX / REG characteristic functions (built and checked)\n";
  bench::Table table({"k", "window", "ex_jd", "ex_ktree", "ex_kdiam",
                      "reg_ktree", "reg_kdiam", "mismatch"},
                     11);
  table.print_header();

  std::int64_t mismatches_total = 0;
  for (const std::int32_t k : {2, 3, 4, 5, 6, 8}) {
    const std::int64_t lo = k + 1;
    const std::int64_t hi = 2 * k + 12 * (k - 1);
    std::int64_t ex_jd = 0;
    std::int64_t ex_ktree = 0;
    std::int64_t ex_kdiam = 0;
    std::int64_t reg_ktree = 0;
    std::int64_t reg_kdiam = 0;
    std::int64_t mismatches = 0;
    for (std::int64_t n = lo; n <= hi; ++n) {
      ex_jd += exists(n, k, Constraint::kStrictJD) ? 1 : 0;
      ex_ktree += exists(n, k, Constraint::kKTree) ? 1 : 0;
      ex_kdiam += exists(n, k, Constraint::kKDiamond) ? 1 : 0;
      for (const auto constraint :
           {Constraint::kStrictJD, Constraint::kKTree, Constraint::kKDiamond}) {
        if (!exists(n, k, constraint)) continue;
        const auto g = build(static_cast<core::NodeId>(n), k, constraint);
        if (g.num_nodes() != n || g.min_degree() < k) ++mismatches;
        const bool is_regular = g.is_regular(k);
        if (constraint == Constraint::kKTree) {
          reg_ktree += is_regular ? 1 : 0;
          if (is_regular != regular_exists(n, k, constraint)) ++mismatches;
        }
        if (constraint == Constraint::kKDiamond) {
          reg_kdiam += is_regular ? 1 : 0;
          if (is_regular != regular_exists(n, k, constraint)) ++mismatches;
        }
      }
    }
    mismatches_total += mismatches;
    table.print_row(k, std::to_string(lo) + ".." + std::to_string(hi), ex_jd,
                    ex_ktree, ex_kdiam, reg_ktree, reg_kdiam, mismatches);
  }

  std::cout << "\nworked examples:\n";
  std::cout << "  (9,3):  EX_jd=" << exists(9, 3, Constraint::kStrictJD)
            << " EX_ktree=" << exists(9, 3, Constraint::kKTree) << '\n';
  std::cout << "  (8,3):  REG_ktree=" << regular_exists(8, 3, Constraint::kKTree)
            << " REG_kdiam=" << regular_exists(8, 3, Constraint::kKDiamond)
            << "  (odd-alpha separation, Theorem 7)\n";
  std::cout << "  (13,3): EX_kdiam=" << exists(13, 3, Constraint::kKDiamond)
            << " REG_kdiam=" << regular_exists(13, 3, Constraint::kKDiamond)
            << "  (j = 1 added leaf: exists, not regular)\n";
  std::cout << "shape check: ex_ktree == ex_kdiam == window - (2k-1-k); "
               "reg_kdiam ~= 2*reg_ktree; mismatch == 0\n";
  return mismatches_total == 0 ? 0 : 1;
}
