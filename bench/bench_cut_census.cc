// E17 (extension) — census of fatal failure patterns.
//
// κ = k only says a fatal k-subset EXISTS; how many there are decides
// whether random failures find one.  This bench counts (exhaustively
// at small n, by sampling at larger n) the fatal subsets of each
// topology at and beyond size k.
//
// Expected shape: at size exactly k every k-regular topology owns at
// least the n neighbor-set cuts (isolating one vertex); the LHG adds a
// few structural ones, all small-separating.  As the subset size grows
// the circulant's ring locality overtakes everything by orders of
// magnitude, consistent with E7's survival curves, with random
// k-regular graphs the most robust.

#include <iostream>
#include <sstream>

#include "core/cut_census.h"
#include "core/random_graphs.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "table.h"

namespace {

std::string fraction(const lhg::core::CutCensus& census) {
  std::ostringstream out;
  out.precision(2);
  out << std::scientific << census.fatal_fraction();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using core::CutCensus;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_cut_census");

  const std::int32_t k = 3;
  std::cout << "E17: fatal-subset census, k = " << k << "  [threads="
            << core::global_thread_count() << "]\n";

  // Exhaustive at n = 18.
  {
    const core::NodeId n = 18;
    const auto lhg_graph = build(n, k);
    const auto harary_graph = harary::circulant(n, k);
    core::Rng rng(2);
    const auto random_graph = core::random_regular_connected(n, k, rng);
    std::cout << "\nexhaustive, n = " << n << ":\n";
    bench::Table table({"size", "subsets", "lhg_fatal", "harary_fatal",
                        "rand_fatal"},
                       13);
    table.print_header();
    const std::int32_t max_size = opts.small ? k + 1 : k + 3;
    for (std::int32_t size = k - 1; size <= max_size; ++size) {
      const bench::WallTimer timer;
      const auto lhg_fatal = core::fatal_node_subsets(lhg_graph, size).fatal;
      const auto harary_fatal =
          core::fatal_node_subsets(harary_graph, size).fatal;
      const auto rand_fatal =
          core::fatal_node_subsets(random_graph, size).fatal;
      table.print_row(size,
                      static_cast<std::int64_t>(core::subset_count(n, size)),
                      lhg_fatal, harary_fatal, rand_fatal);
      report.add("exhaustive/n=" + std::to_string(n) +
                     "/size=" + std::to_string(size),
                 {{"n", n}, {"size", size}, {"lhg_fatal", lhg_fatal}},
                 timer.elapsed_ns());
    }
  }

  // Sampled at n = 150.
  {
    const core::NodeId n = 150;
    const std::int64_t kTrials = opts.small ? 4000 : 20000;
    const auto lhg_graph = build(n, k);
    const auto harary_graph = harary::circulant(n, k);
    core::Rng rng(3);
    const auto random_graph = core::random_regular_connected(n, k, rng);
    std::cout << "\nsampled (" << kTrials << " subsets/cell), n = " << n
              << ":\n";
    bench::Table table({"size", "lhg_frac", "harary_frac", "rand_frac"}, 14);
    table.print_header();
    for (const std::int32_t size : {3, 5, 8, 12, 20, 30}) {
      core::Rng a(static_cast<std::uint64_t>(10 + size));
      core::Rng b(static_cast<std::uint64_t>(20 + size));
      core::Rng c(static_cast<std::uint64_t>(30 + size));
      const bench::WallTimer timer;
      const auto lhg_frac =
          fraction(core::sampled_fatal_subsets(lhg_graph, size, kTrials, a));
      table.print_row(
          size, lhg_frac,
          fraction(core::sampled_fatal_subsets(harary_graph, size, kTrials, b)),
          fraction(core::sampled_fatal_subsets(random_graph, size, kTrials, c)));
      report.add("sampled/n=" + std::to_string(n) +
                     "/size=" + std::to_string(size),
                 {{"n", n}, {"size", size}, {"trials", kTrials}},
                 timer.elapsed_ns());
    }
  }
  std::cout << "\nshape check: at size k every k-regular topology has >= n "
               "neighbor-set cuts (harary exactly n, lhg a few extra); for "
               "larger sizes rand < lhg << harary\n";
  return opts.finish(report);
}
