// E22 — long-horizon reliable-traffic soak over an LHG under bursty
// loss, fully instrumented.
//
// The workload that motivated the sliding dedup window: a handful of
// sources stream one DATA frame per tick to a fixed overlay neighbor
// for the whole horizon, so each streaming arc carries `ticks`
// sequence numbers — far past the seed's 1024-seq/arc abort and (at
// the full horizon of 10^5 ticks) past the entire 16-bit sequence
// space, exercising wraparound under load.  Loss is a Gilbert–Elliott
// bursty channel, the regime where retransmit storms cluster and the
// in-flight span actually stretches.
//
// Reported per row: exactly-once delivery accounting, retransmit and
// duplicate totals, frame-latency quantiles (send tick -> deliver, via
// an obs histogram), and event-engine throughput.  The JSON entry
// embeds the full metrics snapshot; `--trace` exports the tail of the
// run as Chrome trace_event JSON (ring capacity 2^16, oldest events
// overwritten by design — scripts/trace_check.py validates the file).

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "flooding/network.h"
#include "flooding/reliable_link.h"
#include "lhg/lhg.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "report.h"
#include "table.h"

int main(int argc, char** argv) {
  using namespace lhg;
  using core::NodeId;

  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::BenchReport report("bench_soak");

  const NodeId n = opts.small ? 128 : 512;
  const std::int32_t k = 4;
  const std::int64_t ticks = opts.small ? 6000 : 100000;
  const std::int32_t sources = opts.small ? 4 : 8;

  std::cout << "E22: reliable-stream soak on LHG(" << n << "," << k << "), "
            << sources << " sources x " << ticks
            << " ticks, Gilbert-Elliott bursty loss\n";
  bench::Table table({"frames", "delivered", "retx", "dups", "overflow",
                      "p50_lat", "p99_lat", "Mev/s"},
                     11);
  table.print_header();

  const auto g = build(n, k);
  flooding::Simulator sim;
  core::Rng rng(20250807);
  // Bad states strike ~1/6 of the time and last ~4 ticks; frames sent
  // into one lose 60% of copies — clustered losses, ~10% overall.
  flooding::Network net(g, sim, flooding::LatencySpec::fixed(1.0), rng,
                        flooding::ChaosSpec::bursty(0.05, 0.25, 0.6));
  // Retry period 3.0 > the 2-tick RTT, so a retry never races the ACK
  // of a successful first copy; retransmits then measure loss, not the
  // timer granularity.
  flooding::ReliableLink link(net, flooding::BackoffPolicy::fixed(3.0, 30),
                              rng);

  obs::Runtime obs_rt(obs::ObsConfig{true, true, 1 << 16});
  sim.set_obs(obs_rt.obs());
  net.set_obs(obs_rt.obs());
  link.set_obs(obs_rt.obs());

  // Frame ids encode (source index, tick): payload = s * ticks + t.
  // The deliver handler recovers the send tick from the id, so frame
  // latency needs no per-frame side table.
  obs::Registry driver_reg;
  const obs::HistogramId frame_latency =
      driver_reg.histogram("soak.frame_latency_milliticks");
  const std::int64_t total_frames =
      static_cast<std::int64_t>(sources) * ticks;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(total_frames), 0);
  std::int64_t delivered = 0;
  std::int64_t duplicate_frames = 0;
  link.set_deliver_handler([&](NodeId, NodeId, std::int64_t payload) {
    auto& mark = seen[static_cast<std::size_t>(payload)];
    if (mark != 0) {
      ++duplicate_frames;  // must stay 0: the dedup window's contract
      return;
    }
    mark = 1;
    ++delivered;
    const auto sent_at = static_cast<double>(payload % ticks);
    driver_reg.observe(frame_latency,
                       obs::SimObs::milli_ticks(sim.now() - sent_at));
  });

  const bench::WallTimer timer;
  // Each stream re-arms its own next send (the constant-footprint
  // discipline from heartbeat/repair) instead of pre-scheduling
  // sources x ticks events up front.
  std::function<void(std::int32_t, NodeId, NodeId, std::int64_t)> stream =
      [&](std::int32_t s, NodeId u, NodeId v, std::int64_t t) {
        link.send(u, v, static_cast<std::int64_t>(s) * ticks + t);
        if (t + 1 < ticks) {
          sim.schedule_at(static_cast<double>(t + 1),
                          [&stream, s, u, v, t] { stream(s, u, v, t + 1); });
        }
      };
  for (std::int32_t s = 0; s < sources; ++s) {
    // Source s streams to its first overlay neighbor; sources are
    // spread across the id space so streams don't share arcs.
    const NodeId u = static_cast<NodeId>(s) * (n / sources);
    const NodeId v = g.neighbors(u)[0];
    sim.schedule_at(0.0, [&stream, s, u, v] { stream(s, u, v, 0); });
  }
  sim.run();
  const std::int64_t wall_ns = timer.elapsed_ns();

  const obs::Snapshot sim_metrics = obs_rt.metrics_snapshot();
  const obs::Snapshot driver_metrics = driver_reg.snapshot();
  const obs::MetricSample* lat = driver_metrics.find(
      "soak.frame_latency_milliticks");
  const double mev_per_s = 1e3 * static_cast<double>(sim.events_processed()) /
                           static_cast<double>(wall_ns);
  table.print_row(total_frames, delivered, link.retransmissions(),
                  duplicate_frames, link.window_overflows(),
                  lat->quantile_floor(0.5), lat->quantile_floor(0.99),
                  mev_per_s);

  report.add("soak/n=" + std::to_string(n) + "/k=" + std::to_string(k) +
                 "/sources=" + std::to_string(sources) +
                 "/ticks=" + std::to_string(ticks),
             {{"n", n},
              {"k", k},
              {"sources", sources},
              {"ticks", ticks},
              {"frames", total_frames},
              {"delivered", delivered},
              {"duplicate_frames", duplicate_frames},
              {"retransmits", link.retransmissions()},
              {"window_overflows", link.window_overflows()},
              {"p50_latency_milliticks", lat->quantile_floor(0.5)},
              {"p99_latency_milliticks", lat->quantile_floor(0.99)},
              {"events", sim.events_processed()}},
             wall_ns, sim_metrics.to_json());

  std::cout << "invariants: delivered == frames, dups == 0, overflow == 0 "
               "(in-flight span never approaches the 1024 window)\n";
  if (delivered != total_frames || duplicate_frames != 0 ||
      link.window_overflows() != 0) {
    std::cerr << "bench_soak: delivery invariant violated\n";
    return 1;
  }

  if (!opts.trace_path.empty()) {
    const obs::TraceLog trace = obs_rt.trace_log();
    if (!obs::write_chrome_trace(opts.trace_path, trace)) return 1;
    std::cout << "wrote " << trace.events.size() << " trace events (dropped "
              << trace.dropped << ") to " << opts.trace_path << '\n';
  }

  return opts.finish(report);
}
