// Overlay designer: given a cluster size n and a fault-tolerance target
// f (the system must survive any f crashes), choose and materialize the
// cheapest LHG overlay.
//
//   ./design_topology [n] [f] [out.edges]     (defaults: n = 57, f = 3)
//
// Walks through the real decision procedure a deployment would use:
//   1. k = f + 1 (Menger: surviving f crashes needs k-connectivity);
//   2. prefer a constraint that is k-regular at this n (minimum links,
//      uniform per-node load); K-DIAMOND is regular twice as often;
//   3. if n is off every regular lattice, quantify the overhead of each
//      constraint and pick the smallest;
//   4. emit the edge list (and DOT for small graphs) for the deployment.

#include <cmath>
#include <fstream>
#include <iostream>

#include "core/diameter.h"
#include "core/format.h"
#include "core/graph_io.h"
#include "harary/harary.h"
#include "lhg/lhg.h"

int main(int argc, char** argv) {
  using namespace lhg;
  using core::format;

  const auto n = static_cast<core::NodeId>(argc > 1 ? std::atoi(argv[1]) : 57);
  const std::int32_t f = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::int32_t k = f + 1;
  std::cout << format("designing an overlay for n={} nodes surviving any "
                      "f={} crashes -> k={}\n\n",
                      n, f, k);
  if (k < 2 || !exists(n, k)) {
    std::cerr << format("infeasible: LHGs need k >= 2 and n >= 2k (= {})\n",
                        2 * k);
    return 1;
  }

  // Compare every realizable constraint at this (n, k).
  const auto optimum = harary::min_edges(n, k);
  std::cout << format("Harary lower bound: {} links (any k-connected graph)\n",
                      optimum);
  Constraint best = Constraint::kKTree;
  std::int64_t best_edges = -1;
  for (const auto constraint :
       {Constraint::kStrictJD, Constraint::kKTree, Constraint::kKDiamond}) {
    if (!exists(n, k, constraint)) {
      std::cout << format("  {}: not realizable at (n={}, k={})\n",
                          to_string(constraint), n, k);
      continue;
    }
    const auto g = build(n, k, constraint);
    std::cout << format(
        "  {}: {} links (+{} over bound), degrees {}..{}, {}, diameter {}\n",
        to_string(constraint), g.num_edges(), g.num_edges() - optimum,
        g.min_degree(), g.max_degree(),
        g.is_regular(k) ? "k-regular" : "not regular", core::diameter(g));
    if (best_edges < 0 || g.num_edges() < best_edges) {
      best_edges = g.num_edges();
      best = constraint;
    }
  }

  const auto chosen = build(n, k, best);
  std::cout << format("\nchosen: {} ({} links, diameter {} vs log2(n)={:.1f})\n",
                      to_string(best), chosen.num_edges(),
                      core::diameter(chosen),
                      std::log2(static_cast<double>(n)));

  const std::string path = argc > 3 ? argv[3] : "overlay.edges";
  std::ofstream out(path);
  core::write_edge_list(chosen, out);
  std::cout << format("edge list written to {}\n", path);
  if (n <= 24) {
    std::cout << "\nDOT (render with `dot -Tpng`):\n"
              << core::to_dot(chosen, "overlay");
  }
  return 0;
}
