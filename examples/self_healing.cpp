// Capstone: a self-healing broadcast overlay.
//
//   ./self_healing [n] [k]     (defaults: n = 62, k = 4)
//
// Ties the whole library together the way a deployment would:
//   1. build the LHG and flood a message (baseline);
//   2. crash f = k−1 nodes mid-operation;
//   3. the heartbeat layer detects the crashes;
//   4. flooding STILL reaches every survivor (the k−1 guarantee) —
//      this window between failure and repair is exactly what the
//      paper's topology buys;
//   5. the membership layer rewires to a fresh LHG on the survivors;
//   6. verify the healed overlay from first principles and flood again.

#include <algorithm>
#include <iostream>

#include "core/format.h"
#include "core/rng.h"
#include "flooding/failure.h"
#include "flooding/heartbeat.h"
#include "flooding/protocols.h"
#include "lhg/lhg.h"
#include "lhg/verifier.h"
#include "membership/membership.h"

int main(int argc, char** argv) {
  using namespace lhg;
  using core::format;

  const auto n = static_cast<core::NodeId>(argc > 1 ? std::atoi(argv[1]) : 62);
  const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  if (!exists(n, k) || !exists(n - (k - 1), k)) {
    std::cerr << format("need n and n-(k-1) >= 2k; got (n={}, k={})\n", n, k);
    return 1;
  }

  // 1. Healthy operation.
  const auto g = build(n, k);
  auto healthy = flooding::flood(g, {.source = 0});
  std::cout << format("[t0] overlay {} floods in {} hops, {} msgs\n",
                      core::describe(g), healthy.completion_hops,
                      healthy.messages_sent);

  // 2. k−1 crashes at t = 10 (mid-operation).
  core::Rng rng(7);
  flooding::FailurePlan plan = flooding::random_crashes(g, k - 1, 0, rng, /*time=*/0.0);
  for (auto& crash : plan.crashes) crash.time = 10.0;
  std::cout << format("[t1] crashing {} nodes at t=10:", k - 1);
  for (const auto& crash : plan.crashes) std::cout << ' ' << crash.node;
  std::cout << '\n';

  // 3. Heartbeat detection.
  const auto heartbeat = flooding::run_heartbeat(
      g, {.interval = 1.0, .timeout = 3.5, .horizon = 30.0}, plan);
  if (!heartbeat.all_crashes_detected()) {
    std::cout << "[t2] FAILURE: some crash went undetected\n";
    return 2;
  }
  std::cout << format(
      "[t2] heartbeats detected all {} crashes, worst latency {:.1f} "
      "(beats: {})\n",
      plan.crashes.size(), heartbeat.max_detection_latency(),
      heartbeat.heartbeats_sent);

  // 4. Broadcast during the degraded window: still total.
  const auto degraded = flooding::flood(g, {.source = 0}, plan);
  std::cout << format(
      "[t3] degraded flood: {}/{} live nodes in {} hops [{}]\n",
      degraded.delivered_alive, degraded.alive_nodes, degraded.completion_hops,
      degraded.all_alive_delivered() ? "guarantee held" : "GUARANTEE BROKEN");
  if (!degraded.all_alive_delivered()) return 2;

  // 5. Rewire the survivors into a fresh LHG of size n-(k-1).
  membership::Overlay overlay(n, k);
  const auto churn = overlay.resize(n - (k - 1));
  std::cout << format(
      "[t4] membership rewired to n={} ({} edges added, {} removed)\n",
      overlay.size(), churn.added.size(), churn.removed.size());

  // 6. Verify and resume.
  const auto report = verify(overlay.graph(), k, {.minimality_sample = 32});
  const auto healed = flooding::flood(overlay.graph(), {.source = 0});
  std::cout << format(
      "[t5] healed overlay verified [{}]; flood {} hops, {} msgs\n",
      report.is_lhg() ? "LHG" : "NOT LHG", healed.completion_hops,
      healed.messages_sent);
  return report.is_lhg() && healed.all_alive_delivered() ? 0 : 2;
}
