// lhg_cli — command-line front end to the library.
//
//   lhg_cli build  <n> <k> [jd|ktree|kdiamond]     emit edge list to stdout
//   lhg_cli verify <k>  < graph.edges              verify the LHG definition
//   lhg_cli stats       < graph.edges              n / m / degrees / diameter
//   lhg_cli flood  <source> [crashes]  < graph.edges   simulate a flood
//   lhg_cli route  <n> <k> <from> <to>             structured route
//   lhg_cli exists <n> <k>                         EX/REG for all constraints
//   lhg_cli plan   <n> <k> [jd|ktree|kdiamond]     emit lhg-plan text
//   lhg_cli spectral    < graph.edges              lazy-walk gap + conductance
//
// Graphs stream through stdin/stdout in the edge-list format
// ("n m" header, one "u v" per line), so the tool composes with files
// and pipes:  lhg_cli build 100 4 | lhg_cli verify 4

#include <iostream>
#include <string>
#include <vector>

#include "core/bfs.h"
#include "core/check.h"
#include "core/connectivity.h"
#include "core/diameter.h"
#include "core/format.h"
#include "core/graph_io.h"
#include "core/spectral.h"
#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "lhg/lhg.h"
#include "lhg/plan_io.h"
#include "lhg/routing.h"
#include "lhg/verifier.h"

namespace {

using lhg::core::format;

int usage() {
  std::cerr <<
      "usage:\n"
      "  lhg_cli build  <n> <k> [jd|ktree|kdiamond]   (edge list to stdout)\n"
      "  lhg_cli verify <k>                           (edge list on stdin)\n"
      "  lhg_cli stats                                (edge list on stdin)\n"
      "  lhg_cli flood  <source> [crashes]            (edge list on stdin)\n"
      "  lhg_cli route  <n> <k> <from> <to>\n"
      "  lhg_cli exists <n> <k>\n"
      "  lhg_cli plan   <n> <k> [jd|ktree|kdiamond]   (lhg-plan to stdout)\n"
      "  lhg_cli spectral                             (edge list on stdin)\n";
  return 64;
}

lhg::Constraint parse_constraint(const std::string& name) {
  if (name == "jd") return lhg::Constraint::kStrictJD;
  if (name == "ktree") return lhg::Constraint::kKTree;
  if (name == "kdiamond") return lhg::Constraint::kKDiamond;
  throw std::invalid_argument("unknown constraint '" + name + "'");
}

int cmd_build(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto n = static_cast<lhg::core::NodeId>(std::stoi(argv[2]));
  const auto k = std::stoi(argv[3]);
  const auto constraint =
      argc > 4 ? parse_constraint(argv[4]) : lhg::Constraint::kKTree;
  lhg::core::write_edge_list(lhg::build(n, k, constraint), std::cout);
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto k = std::stoi(argv[2]);
  const auto g = lhg::core::read_edge_list(std::cin);
  lhg::VerifyOptions options;
  if (g.num_edges() > 512) options.minimality_sample = 128;
  const auto report = lhg::verify(g, k, options);
  std::cout << lhg::to_string(report);
  return report.is_lhg() ? 0 : 1;
}

int cmd_stats(int, char**) {
  const auto g = lhg::core::read_edge_list(std::cin);
  std::cout << lhg::core::describe(g) << '\n';
  if (lhg::core::is_connected(g)) {
    std::cout << format("diameter      : {}\n", lhg::core::diameter(g));
    std::cout << format("kappa / lambda: {} / {}\n",
                        lhg::core::vertex_connectivity(g),
                        lhg::core::edge_connectivity(g));
  } else {
    std::cout << "disconnected\n";
  }
  return 0;
}

int cmd_flood(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto source = static_cast<lhg::core::NodeId>(std::stoi(argv[2]));
  const auto crashes = argc > 3 ? std::stoi(argv[3]) : 0;
  const auto g = lhg::core::read_edge_list(std::cin);
  lhg::core::Rng rng(1);
  const auto plan =
      lhg::flooding::random_crashes(g, crashes, source, rng, /*time=*/0.0);
  const auto result = lhg::flooding::flood(g, {.source = source}, plan);
  std::cout << format(
      "delivered {}/{} live nodes in {} hops with {} messages [{}]\n",
      result.delivered_alive, result.alive_nodes, result.completion_hops,
      result.messages_sent,
      result.all_alive_delivered() ? "complete" : "INCOMPLETE");
  return result.all_alive_delivered() ? 0 : 1;
}

int cmd_route(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto n = static_cast<lhg::core::NodeId>(std::stoi(argv[2]));
  const auto k = std::stoi(argv[3]);
  const auto from = static_cast<lhg::core::NodeId>(std::stoi(argv[4]));
  const auto to = static_cast<lhg::core::NodeId>(std::stoi(argv[5]));
  const auto overlay = lhg::make_routed_overlay(n, k);
  const auto path = overlay.router.route(from, to);
  std::cout << format("{} hops:", path.size() - 1);
  for (const auto node : path) std::cout << ' ' << node;
  std::cout << '\n';
  return 0;
}

int cmd_plan(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto n = std::stoll(argv[2]);
  const auto k = std::stoi(argv[3]);
  const auto constraint =
      argc > 4 ? parse_constraint(argv[4]) : lhg::Constraint::kKTree;
  lhg::write_plan(lhg::plan(n, k, constraint), std::cout);
  return 0;
}

int cmd_spectral(int, char**) {
  const auto g = lhg::core::read_edge_list(std::cin);
  const auto estimate = lhg::core::lazy_walk_lambda2(g);
  std::cout << format("lambda2      : {}\n", estimate.lambda2);
  std::cout << format("spectral gap : {}\n", estimate.gap);
  std::cout << format("conductance  : {}\n", lhg::core::sweep_conductance(g));
  std::cout << format("iterations   : {} ({})\n", estimate.iterations,
                      estimate.converged ? "converged" : "NOT converged");
  return 0;
}

int cmd_exists(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto n = std::stoll(argv[2]);
  const auto k = std::stoi(argv[3]);
  for (const auto constraint :
       {lhg::Constraint::kStrictJD, lhg::Constraint::kKTree,
        lhg::Constraint::kKDiamond}) {
    std::cout << format("{}: EX={} REG={}\n", lhg::to_string(constraint),
                        lhg::exists(n, k, constraint) ? "yes" : "no",
                        lhg::regular_exists(n, k, constraint) ? "yes" : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Bad CLI input trips library preconditions; report those as ordinary
  // "error: ..." messages instead of aborting the process.
  lhg::core::set_check_failure_handler(
      &lhg::core::throwing_check_failure_handler);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "build") return cmd_build(argc, argv);
    if (command == "verify") return cmd_verify(argc, argv);
    if (command == "stats") return cmd_stats(argc, argv);
    if (command == "flood") return cmd_flood(argc, argv);
    if (command == "route") return cmd_route(argc, argv);
    if (command == "exists") return cmd_exists(argc, argv);
    if (command == "plan") return cmd_plan(argc, argv);
    if (command == "spectral") return cmd_spectral(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 65;
  }
  return usage();
}
