// Chaos drill: a broadcast service running on an LHG overlay, hammered
// by crash and link-failure scenarios.
//
//   ./broadcast_under_failures [n] [k] [scenarios]   (defaults 100, 4, 40)
//
// Each scenario picks a random source, a random mix of node crashes
// (up to k−1) and link failures (up to k−1 combined budget stays < k),
// some injected mid-flood, and floods a message.  The paper's guarantee
// — every live node is delivered despite any < k failures — must hold
// in every scenario; the drill prints per-scenario outcomes and a
// summary.

#include <algorithm>
#include <iostream>

#include "core/format.h"
#include "core/rng.h"
#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "lhg/lhg.h"

int main(int argc, char** argv) {
  using namespace lhg;
  using namespace lhg::flooding;
  using core::format;

  const auto n = static_cast<core::NodeId>(argc > 1 ? std::atoi(argv[1]) : 100);
  const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  const int scenarios = argc > 3 ? std::atoi(argv[3]) : 40;
  if (!exists(n, k)) {
    std::cerr << format("no LHG for (n={}, k={})\n", n, k);
    return 1;
  }
  const auto g = build(n, k);
  std::cout << format("overlay: {} (k={})\n", core::describe(g), k);
  std::cout << format("running {} failure scenarios, budget k-1={} "
                      "failures each\n\n",
                      scenarios, k - 1);

  core::Rng rng(2026);
  int survived = 0;
  double worst_rounds = 0;
  for (int s = 0; s < scenarios; ++s) {
    const auto source = static_cast<core::NodeId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    // Split the f < k failure budget between crashes and link cuts.
    const auto budget = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(k)));
    const auto crash_count = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(budget) + 1));
    const auto link_count = budget - crash_count;

    FailurePlan plan = random_crashes(g, crash_count, source, rng, /*time=*/0.0);
    auto links = random_link_failures(g, link_count, rng, /*time=*/0.0);
    plan.link_failures = std::move(links.link_failures);
    // A third of the failures strike mid-flood rather than up front.
    for (auto& crash : plan.crashes) {
      if (rng.next_bool(0.33)) crash.time = 1.0 + rng.next_double() * 3.0;
    }
    for (auto& failure : plan.link_failures) {
      if (rng.next_bool(0.33)) failure.time = 1.0 + rng.next_double() * 3.0;
    }

    const auto result = flood(g, {.source = source}, plan);
    const bool ok = result.all_alive_delivered();
    survived += ok ? 1 : 0;
    worst_rounds = std::max(worst_rounds, result.completion_time);
    std::cout << format(
        "  scenario {}: source={} crashes={} links={} -> {}/{} delivered in "
        "{} hops [{}]\n",
        s, source, crash_count, link_count, result.delivered_alive,
        result.alive_nodes, result.completion_hops, ok ? "ok" : "LOST");
  }
  std::cout << format("\nsummary: {}/{} scenarios fully delivered; worst "
                      "completion {:.1f} rounds\n",
                      survived, scenarios, worst_rounds);
  return survived == scenarios ? 0 : 2;
}
