// Head-to-head: for one deployment size, compare the four candidate
// dissemination overlays an architect would shortlist — LHG flooding,
// classic Harary flooding, random-regular flooding, and membership
// gossip — on the axes that matter: latency, message cost, and
// guaranteed vs probabilistic delivery under failures.
//
//   ./overlay_comparison [n] [k]    (defaults: n = 302, k = 4)

#include <algorithm>
#include <iostream>

#include "core/diameter.h"
#include "core/format.h"
#include "core/random_graphs.h"
#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "harary/harary.h"
#include "lhg/lhg.h"

namespace {

struct Candidate {
  std::string name;
  lhg::core::Graph graph;   // empty for gossip (no overlay)
  bool gossip = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lhg;
  using namespace lhg::flooding;
  using core::format;

  const auto n = static_cast<core::NodeId>(argc > 1 ? std::atoi(argv[1]) : 302);
  const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  if (!exists(n, k)) {
    std::cerr << format("need n >= 2k; got (n={}, k={})\n", n, k);
    return 1;
  }

  core::Rng rng(7);
  std::vector<Candidate> candidates;
  candidates.push_back({"lhg", build(n, k), false});
  candidates.push_back({"harary", harary::circulant(n, k), false});
  if ((static_cast<std::int64_t>(n) * k) % 2 == 0) {
    candidates.push_back(
        {"rand-kreg", core::random_regular_connected(n, k, rng), false});
  }
  candidates.push_back({"gossip", core::Graph{}, true});

  std::cout << format(
      "n={}, k={}: 30 trials each of healthy + {}-crash floods\n\n", n, k,
      k - 1);
  std::cout << format("{}\n",
                      "overlay      links  diam  rounds  msgs/node  "
                      "worst-delivery(f=k-1)");
  for (auto& candidate : candidates) {
    double total_msgs = 0;
    double rounds = 0;
    double worst_delivery = 1.0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      core::Rng trial_rng(static_cast<std::uint64_t>(t) * 131 + 17);
      DisseminationResult result;
      if (candidate.gossip) {
        FailurePlan plan;
        // Gossip has no overlay; crash random non-source nodes directly.
        const auto g_for_failures = candidates[0].graph;
        plan = random_crashes(g_for_failures, k - 1, 0, trial_rng, /*time=*/0.0);
        result = gossip(
            n, {.source = 0, .fanout = 4,
                .seed = static_cast<std::uint64_t>(t)}, plan);
      } else {
        const auto plan = random_crashes(candidate.graph, k - 1, 0, trial_rng, /*time=*/0.0);
        result = flood(candidate.graph,
                       {.source = 0, .seed = static_cast<std::uint64_t>(t)},
                       plan);
      }
      total_msgs += static_cast<double>(result.messages_sent);
      rounds += result.completion_hops;
      worst_delivery = std::min(worst_delivery, result.delivery_ratio());
    }
    const auto links =
        candidate.gossip ? 0 : candidate.graph.num_edges();
    const auto diam = candidate.gossip
                          ? -1
                          : core::diameter(candidate.graph);
    std::cout << format("{}{}{}{}{}{:.3f}\n",
                        format("{}", candidate.name + std::string(13 - candidate.name.size(), ' ')),
                        format("{} ", links),
                        diam < 0 ? std::string("  -   ") : format("  {}   ", diam),
                        format("  {:.1f}   ", rounds / trials),
                        format("  {:.1f}      ", total_msgs / trials / n),
                        worst_delivery);
  }
  std::cout << "\nreading: lhg matches harary's link budget but floods in "
               "log-rounds with guaranteed delivery;\ngossip approaches 1.0 "
               "delivery only probabilistically and at higher message cost.\n";
  return 0;
}
