// Quickstart: build a Logarithmic Harary Graph, verify the LHG
// definition from first principles, compare it with the classic Harary
// baseline, and flood it under failures.
//
//   ./quickstart [n] [k]        (defaults: n = 100, k = 4)

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/diameter.h"
#include "core/format.h"
#include "flooding/failure.h"
#include "flooding/protocols.h"
#include "harary/harary.h"
#include "lhg/lhg.h"
#include "lhg/verifier.h"

int main(int argc, char** argv) {
  using lhg::core::format;

  const auto n = static_cast<lhg::core::NodeId>(argc > 1 ? std::atoi(argv[1]) : 100);
  const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  if (!lhg::exists(n, k)) {
    std::cerr << format("no LHG exists for (n={}, k={}); need n >= 2k\n", n, k);
    return 1;
  }

  // 1. Build the LHG and the classic Harary baseline.
  const auto graph = lhg::build(n, k);
  const auto baseline = lhg::harary::circulant(n, k);
  std::cout << format("LHG     : {}\n", lhg::core::describe(graph));
  std::cout << format("Harary  : {}\n", lhg::core::describe(baseline));
  std::cout << format("diameter: LHG {} vs Harary {}  (log2 n = {:.1f})\n\n",
                      lhg::core::diameter(graph), lhg::core::diameter(baseline),
                      std::log2(static_cast<double>(n)));

  // 2. Verify the four LHG properties from first principles.
  const auto report = lhg::verify(graph, k);
  std::cout << lhg::to_string(report) << '\n';

  // 3. Flood it with k-1 adversarial crashes: delivery must be total.
  lhg::core::Rng rng(42);
  const auto plan = lhg::flooding::cut_targeted_crashes(graph, k - 1, 0, rng, /*time=*/0.0);
  const auto flood = lhg::flooding::flood(graph, {.source = 0}, plan);
  std::cout << format(
      "flood under {} adversarial crashes: delivered {}/{} live nodes in {} "
      "hops, {} messages\n",
      k - 1, flood.delivered_alive, flood.alive_nodes, flood.completion_hops,
      flood.messages_sent);
  return flood.all_alive_delivered() ? 0 : 2;
}
